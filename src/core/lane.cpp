/**
 * @file
 * UDP lane interpreter: dispatch unit, stream-buffer/prefetch unit, and
 * action unit semantics.
 *
 * Two host-side interpreter paths produce bit-identical simulated
 * results (stats, outputs, trace/profile streams — see
 * tests/test_predecode.cpp):
 *
 *  - the fast path: runs over a shared read-only `DecodedProgram`
 *    (transitions, micro-op streams and auxiliary-chain walks expanded
 *    once per program), with the inner loops instantiated twice so the
 *    tracer/profiler hooks vanish from the uninstrumented variant;
 *  - the legacy path (`UDP_SIM_NO_PREDECODE=1`): decodes every packed
 *    word at dispatch time, exactly as the original interpreter did.
 *
 * The action unit is one template (`exec_actions_impl`) shared by both
 * paths, so the ~50 opcode semantics cannot drift between them; only
 * the micro-op *source* differs.
 */
#include "lane.hpp"

#include "decoded_program.hpp"
#include "profile.hpp"
#include "threaded_program.hpp"
#include "trace.hpp"

#include <algorithm>

namespace udp {

namespace {

/// CRC32-C (Castagnoli) byte-step table, built on first use.
const std::array<Word, 256> &
crc32c_table()
{
    static const std::array<Word, 256> table = [] {
        std::array<Word, 256> t{};
        for (Word i = 0; i < 256; ++i) {
            Word c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/// Snappy-style multiplicative hash (Section 3.2.5 "hash action").
Word
hash_mix(Word v, unsigned table_log2)
{
    const Word h = v * 0x1E35A7BDu;
    if (table_log2 == 0 || table_log2 >= 32)
        return h;
    return h >> (32 - table_log2);
}

} // namespace

Lane::Lane(unsigned id, LocalMemory &mem) : id_(id), mem_(mem)
{
    if (id >= kNumLanes)
        throw UdpError("Lane: lane id out of range");
}

void
Lane::load(const Program &prog)
{
    load(prog, nullptr, nullptr);
}

void
Lane::load(const Program &prog,
           std::shared_ptr<const DecodedProgram> decoded)
{
    load(prog, std::move(decoded), nullptr);
}

void
Lane::load(const Program &prog,
           std::shared_ptr<const DecodedProgram> decoded,
           std::shared_ptr<const CompiledProgram> compiled)
{
    prog_ = &prog;
    const SimBackend backend = sim_backend();
    compiled_ = nullptr;
    if (backend == SimBackend::Legacy) {
        decoded_ = nullptr;
    } else {
        if (backend == SimBackend::Threaded)
            compiled_ = compiled ? std::move(compiled)
                                 : shared_compiled(prog);
        // The decoded image stays bound on the threaded backend too:
        // NFA mode and the instrumented loops run on it.
        if (decoded)
            decoded_ = std::move(decoded);
        else if (compiled_)
            decoded_ = compiled_->decoded_shared();
        else
            decoded_ = shared_decoded(prog);
    }
    reset();
}

void
Lane::set_input(BytesView data)
{
    sb_.attach(data);
}

Word
Lane::reg(unsigned idx) const
{
    if (idx >= kNumScalarRegs)
        throw UdpError("Lane: register index out of range");
    if (idx == kRegStreamIdx)
        return static_cast<Word>(sb_.pos_bytes());
    return regs_[idx];
}

void
Lane::set_reg(unsigned idx, Word value)
{
    if (idx >= kNumScalarRegs)
        throw UdpError("Lane: register index out of range");
    if (idx == kRegStreamIdx) {
        // r15 is the architecturally visible stream byte index; writing it
        // repositions the stream (automatic index management).
        sb_.seek_bits(std::uint64_t{value} * 8);
        return;
    }
    regs_[idx] = value;
}

void
Lane::reset()
{
    regs_.fill(0);
    symbol_bits_ = prog_ ? prog_->initial_symbol_bits : 8;
    dispatch_base_ = prog_ ? prog_->init_dispatch_base : 0;
    action_base_ = prog_ ? prog_->init_action_base : 0;
    action_scale_ = prog_ ? prog_->init_action_scale : 0;
    stats_ = LaneStats{};
    output_.clear();
    out_bit_acc_ = 0;
    out_bit_count_ = 0;
    accepts_.clear();
    cur_state_ = 0;
    resume_ds_ = nullptr;
    resume_cs_ = ThreadedEngine::kNoResume;
    started_ = false;
    halted_ = false;
    halt_status_ = LaneStatus::Done;
    fault_ = LaneFault{};
    sb_.seek_bits(0);
}

void
Lane::hard_reset()
{
    window_base_ = 0;
    trap_cycle_ = 0;
    sb_.attach(BytesView{});
    reset();
}

std::string_view
lane_status_name(LaneStatus st)
{
    switch (st) {
      case LaneStatus::Done: return "done";
      case LaneStatus::Reject: return "reject";
      case LaneStatus::Running: return "running";
      case LaneStatus::Faulted: return "faulted";
      case LaneStatus::TimedOut: return "timed-out";
      case LaneStatus::Cancelled: return "cancelled";
    }
    return "<bad>";
}

// ---------------------------------------------------------------------------
// Fault containment (docs/ROBUSTNESS.md).
// ---------------------------------------------------------------------------

LaneStatus
Lane::trap(FaultCode code, std::string detail)
{
    halted_ = true;
    resume_ds_ = nullptr;
    resume_cs_ = ThreadedEngine::kNoResume;
    halt_status_ = code == FaultCode::WatchdogTimeout
                       ? LaneStatus::TimedOut
                       : LaneStatus::Faulted;
    fault_.code = code;
    fault_.lane = id_;
    fault_.state_base = static_cast<std::uint32_t>(cur_state_);
    fault_.cycle = stats_.cycles;
    fault_.detail = std::move(detail);
    return halt_status_;
}

LaneStatus
Lane::trip_watchdog(std::string detail)
{
    return trap(FaultCode::WatchdogTimeout, std::move(detail));
}

template <typename Body>
LaneStatus
Lane::run_guarded(Body &&body)
{
    // The conversion boundary: tagged interpreter errors become the
    // lane's fault record here, on both the fast and legacy paths.  An
    // untagged UdpError reaching this frame is a defensive fallback
    // (every lane-reachable site carries a code); anything else — a
    // host-side bug — keeps unwinding.
    try {
        return body();
    } catch (const UdpFaultError &e) {
        return trap(e.code(), e.what());
    } catch (const UdpError &e) {
        return trap(FaultCode::BadAction, e.what());
    }
}

// ---------------------------------------------------------------------------
// Memory access with window translation and bank arbitration.
// ---------------------------------------------------------------------------

ByteAddr
Lane::mem_translate(Word lane_addr) const
{
    return mem_.translate(id_, lane_addr, window_base_);
}

void
Lane::charge_mem(ByteAddr phys, bool is_write)
{
    if (is_write)
        ++stats_.mem_writes;
    else
        ++stats_.mem_reads;
    Cycles stall = 0;
    if (arbiter_) {
        stall = arbiter_(LocalMemory::bank_of(phys), is_write);
        stats_.stall_cycles += stall;
        stats_.cycles += stall;
    }
    if (tracer_) {
        tracer_->record(id_,
                        is_write ? TraceEventKind::MemWrite
                                 : TraceEventKind::MemRead,
                        stats_.cycles, phys, 0);
        if (stall != 0)
            tracer_->record(id_, TraceEventKind::Stall, stats_.cycles,
                            phys, static_cast<std::uint32_t>(stall));
    }
}

std::uint8_t
Lane::mem_read8(Word lane_addr)
{
    const ByteAddr phys = mem_translate(lane_addr);
    charge_mem(phys, false);
    return mem_.read8(phys);
}

void
Lane::mem_write8(Word lane_addr, std::uint8_t v)
{
    const ByteAddr phys = mem_translate(lane_addr);
    charge_mem(phys, true);
    mem_.write8(phys, v);
}

Word
Lane::mem_read32(Word lane_addr)
{
    const ByteAddr phys = mem_translate(lane_addr);
    charge_mem(phys, false);
    return mem_.read32(phys);
}

void
Lane::mem_write32(Word lane_addr, Word v)
{
    const ByteAddr phys = mem_translate(lane_addr);
    charge_mem(phys, true);
    mem_.write32(phys, v);
}

// ---------------------------------------------------------------------------
// Output staging.
// ---------------------------------------------------------------------------

void
Lane::out_byte(std::uint8_t b)
{
    if (out_bit_count_ != 0) {
        out_bits(b, 8);
        return;
    }
    output_.push_back(b);
    ++stats_.output_bytes;
}

void
Lane::out_bits(Word value, unsigned nbits)
{
    if (nbits == 0 || nbits > 32)
        throw UdpError("Lane: outbits width must be 1..32");
    // MSB-first bit packing, symmetric with StreamBuffer::read.
    for (unsigned i = nbits; i-- > 0;) {
        out_bit_acc_ = (out_bit_acc_ << 1) | ((value >> i) & 1);
        if (++out_bit_count_ == 8) {
            output_.push_back(static_cast<std::uint8_t>(out_bit_acc_));
            ++stats_.output_bytes;
            out_bit_acc_ = 0;
            out_bit_count_ = 0;
        }
    }
}

void
Lane::out_flush()
{
    if (out_bit_count_ != 0) {
        const unsigned pad = 8 - out_bit_count_;
        out_bits(0, pad);
    }
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

Word
Lane::dispatch_word(std::size_t word_addr)
{
    const auto &img = prog_->dispatch;
    if (word_addr >= img.size())
        throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "Lane: dispatch fetch out of range");
    ++stats_.dispatch_reads;
    return img[word_addr];
}

Word
Lane::fetch_symbol_bits(unsigned width)
{
    stats_.stream_bits += width;
    last_symbol_ = sb_.read(width);
    return last_symbol_;
}

bool
Lane::attach_addr(const Transition &t, std::size_t &addr) const
{
    std::uint8_t ref = t.attach;
    if (t.type == TransitionType::Refill) {
        // Refill attach ABI: high 3 bits = push-back count, low 5 bits =
        // action ref (31 = none).
        ref = t.attach & 0x1F;
        if (ref == 0x1F)
            return false;
    } else if (ref == kNoActions && t.attach_mode == AttachMode::Direct) {
        return false;
    }
    if (t.attach_mode == AttachMode::Direct) {
        addr = ref;
    } else {
        addr = std::size_t{action_base_} +
               (std::size_t{ref} << action_scale_);
    }
    return true;
}

Lane::StepResult
Lane::step(const StateMeta &meta)
{
    StepResult res;
    const std::size_t base = meta.base; // full word address
    const std::uint8_t sig = state_signature(meta.base);

    // Auxiliary chain scan for a `common` transition: common replaces the
    // whole labeled table, so it is checked before any symbol arithmetic.
    Transition common;
    bool has_common = false;
    for (unsigned k = 1; k <= meta.aux_count && !has_common; ++k) {
        const Transition t = decode_transition(prog_->dispatch[base - k]);
        if (t.signature == sig && t.type == TransitionType::Common) {
            common = t;
            has_common = true;
        }
    }

    Transition taken;
    bool have = false;

    if (has_common) {
        // Takes one dispatch slot; consumes a symbol only when this state
        // dispatches from the stream.
        if (!meta.reg_source) {
            if (sb_.exhausted(symbol_bits_)) {
                res.status = LaneStatus::Done;
                return res;
            }
            fetch_symbol_bits(symbol_bits_);
            res.consumed_symbol = true;
        }
        ++stats_.dispatches;
        ++stats_.cycles;
        ++stats_.dispatch_reads;
        if (tracer_)
            tracer_->record(id_, TraceEventKind::Dispatch, stats_.cycles,
                            static_cast<std::uint32_t>(base),
                            last_symbol_);
        taken = common;
        have = true;
    } else {
        // Fetch the dispatch symbol.
        Word sym;
        const unsigned width = symbol_bits_;
        if (meta.reg_source) {
            const Word mask =
                width >= 32 ? ~Word{0} : ((Word{1} << width) - 1);
            sym = regs_[kRegDispatch] & mask;
            last_symbol_ = sym;
        } else {
            if (sb_.exhausted(width)) {
                res.status = LaneStatus::Done;
                return res;
            }
            sym = fetch_symbol_bits(width);
            res.consumed_symbol = true;
        }

        // Multi-way dispatch: one cycle, slot = base + symbol.
        ++stats_.dispatches;
        ++stats_.cycles;
        if (tracer_)
            tracer_->record(id_, TraceEventKind::Dispatch, stats_.cycles,
                            static_cast<std::uint32_t>(base), sym);
        const std::size_t slot = base + sym;
        if (slot < prog_->dispatch.size() && sym <= meta.max_symbol) {
            const Transition t = decode_transition(dispatch_word(slot));
            if (t.signature == sig &&
                (t.type == TransitionType::Labeled ||
                 t.type == TransitionType::Refill ||
                 t.type == TransitionType::Flagged)) {
                taken = t;
                have = true;
            }
        }

        if (!have) {
            // Signature miss: consult the auxiliary chain (one extra
            // cycle, the paper's majority/default fallback penalty).
            ++stats_.sig_misses;
            ++stats_.cycles;
            if (tracer_)
                tracer_->record(id_, TraceEventKind::SigMiss,
                                stats_.cycles,
                                static_cast<std::uint32_t>(base), sym);
            for (unsigned k = 1; k <= meta.aux_count; ++k) {
                const Transition t =
                    decode_transition(dispatch_word(base - k));
                if (t.signature != sig)
                    break;
                if (t.type == TransitionType::Majority ||
                    t.type == TransitionType::Default) {
                    taken = t;
                    have = true;
                    break;
                }
            }
        }
    }

    if (!have) {
        res.status = LaneStatus::Reject;
        return res;
    }

    // Refill: push back over-consumed bits before actions observe r15.
    if (taken.type == TransitionType::Refill) {
        const unsigned nbits = taken.attach >> 5;
        if (nbits != 0) {
            sb_.refill(nbits);
            stats_.stream_bits -= nbits;
        }
    }

    std::size_t act;
    if (attach_addr(taken, act)) {
        const LaneStatus st = exec_actions(act);
        if (st != LaneStatus::Running) {
            res.status = st;
            return res;
        }
    }

    res.took_transition = true;
    res.next_base = taken.target;
    return res;
}

/**
 * Fast-path dispatch over a predecoded state.  The per-step `common`
 * scan, the signature-miss chain walk and the labeled-slot decode all
 * collapse into precomputed fields; the charged counters are exactly
 * those of `step()` above.
 */
template <bool Instrumented>
Lane::StepResult
Lane::step_fast(const DecodedState &ds)
{
    StepResult res;
    const DecodedProgram &dec = *decoded_;
    const std::size_t base = ds.base;

    Transition taken;
    bool have = false;

    if (ds.has_common) {
        if (!ds.reg_source) {
            if (sb_.exhausted(symbol_bits_)) {
                res.status = LaneStatus::Done;
                return res;
            }
            fetch_symbol_bits(symbol_bits_);
            res.consumed_symbol = true;
        }
        ++stats_.dispatches;
        ++stats_.cycles;
        ++stats_.dispatch_reads;
        if constexpr (Instrumented) {
            if (tracer_)
                tracer_->record(id_, TraceEventKind::Dispatch,
                                stats_.cycles,
                                static_cast<std::uint32_t>(base),
                                last_symbol_);
        }
        taken = ds.common;
        have = true;
    } else {
        Word sym;
        const unsigned width = symbol_bits_;
        if (ds.reg_source) {
            const Word mask =
                width >= 32 ? ~Word{0} : ((Word{1} << width) - 1);
            sym = regs_[kRegDispatch] & mask;
            last_symbol_ = sym;
        } else {
            if (sb_.exhausted(width)) {
                res.status = LaneStatus::Done;
                return res;
            }
            sym = fetch_symbol_bits(width);
            res.consumed_symbol = true;
        }

        ++stats_.dispatches;
        ++stats_.cycles;
        if constexpr (Instrumented) {
            if (tracer_)
                tracer_->record(id_, TraceEventKind::Dispatch,
                                stats_.cycles,
                                static_cast<std::uint32_t>(base), sym);
        }
        const std::size_t slot = base + sym;
        if (slot < dec.dispatch_words() && sym <= ds.max_symbol) {
            ++stats_.dispatch_reads;
            const Transition &t = dec.transition(slot);
            if (t.type == kInvalidTransitionType)
                decode_transition(prog_->dispatch[slot]); // throws
            if (t.signature == ds.signature &&
                (t.type == TransitionType::Labeled ||
                 t.type == TransitionType::Refill ||
                 t.type == TransitionType::Flagged)) {
                taken = t;
                have = true;
            }
        }

        if (!have) {
            ++stats_.sig_misses;
            ++stats_.cycles;
            if constexpr (Instrumented) {
                if (tracer_)
                    tracer_->record(id_, TraceEventKind::SigMiss,
                                    stats_.cycles,
                                    static_cast<std::uint32_t>(base),
                                    sym);
            }
            // The legacy walk charges one dispatch read per aux word
            // examined; the precomputed count is that exact number.
            stats_.dispatch_reads += ds.miss_reads;
            if (ds.has_miss) {
                taken = ds.miss;
                have = true;
            }
        }
    }

    if (!have) {
        res.status = LaneStatus::Reject;
        return res;
    }

    if (taken.type == TransitionType::Refill) {
        const unsigned nbits = taken.attach >> 5;
        if (nbits != 0) {
            sb_.refill(nbits);
            stats_.stream_bits -= nbits;
        }
    }

    std::size_t act;
    if (attach_addr(taken, act)) {
        const LaneStatus st = exec_actions_impl<Instrumented, true>(act);
        if (st != LaneStatus::Running) {
            res.status = st;
            return res;
        }
    }

    res.took_transition = true;
    res.next_base = taken.target;
    return res;
}

// ---------------------------------------------------------------------------
// Action unit.
// ---------------------------------------------------------------------------

/**
 * The action-chain interpreter, shared by both paths so opcode
 * semantics cannot drift.  `Predecoded` selects the micro-op source
 * (DecodedProgram stream vs per-word decode); `Instrumented` compiles
 * the tracer/profiler hooks out of the fast uninstrumented loop.
 */
template <bool Instrumented, bool Predecoded>
LaneStatus
Lane::exec_actions_impl(std::size_t addr)
{
    const auto &img = prog_->actions;
    for (;;) {
        if (addr >= img.size())
            throw UdpFaultError(FaultCode::FetchOutOfRange,
                                "Lane: action fetch out of range");
        ++stats_.dispatch_reads;
        Action decoded_word;
        const Action *ap;
        if constexpr (Predecoded) {
            const Action &pa = decoded_->action(addr);
            if (pa.op == kInvalidOpcode)
                decode_action(img[addr]); // throws the legacy error
            ap = &pa;
        } else {
            decoded_word = decode_action(img[addr]);
            ap = &decoded_word;
        }
        const Action &a = *ap;
        ++stats_.actions;
        ++stats_.cycles;
        if constexpr (Instrumented) {
            if (tracer_)
                tracer_->record(id_, TraceEventKind::Action, stats_.cycles,
                                static_cast<std::uint32_t>(addr),
                                static_cast<std::uint32_t>(a.op));
        }
        // Extra cycles charged inside the switch (loop ops, stalls) are
        // attributed to this opcode via the delta from here.
        const Cycles act_start = Instrumented ? stats_.cycles : 0;

        const Word rs = (a.src == kRegStreamIdx)
                            ? static_cast<Word>(sb_.pos_bytes())
                            : regs_[a.src];
        const Word rr = (a.ref == kRegStreamIdx)
                            ? static_cast<Word>(sb_.pos_bytes())
                            : regs_[a.ref];
        auto wr = [&](Word v) { set_reg(a.dst, v); };

        switch (a.op) {
          case Opcode::Addi: wr(rs + static_cast<Word>(a.imm)); break;
          case Opcode::Subi: wr(rs - static_cast<Word>(a.imm)); break;
          case Opcode::Andi: wr(rs & static_cast<Word>(a.imm)); break;
          case Opcode::Ori: wr(rs | static_cast<Word>(a.imm)); break;
          case Opcode::Xori: wr(rs ^ static_cast<Word>(a.imm)); break;
          case Opcode::Shli: wr(rs << (a.imm & 31)); break;
          case Opcode::Shri: wr(rs >> (a.imm & 31)); break;
          case Opcode::Sari:
            wr(static_cast<Word>(static_cast<std::int32_t>(rs) >>
                                 (a.imm & 31)));
            break;
          case Opcode::Movi: wr(static_cast<Word>(a.imm)); break;
          case Opcode::Lui:
            wr((regs_[a.dst] & 0xFFFFu) |
               (static_cast<Word>(a.imm) << 16));
            break;
          case Opcode::Cmpeqi: wr(rs == static_cast<Word>(a.imm)); break;
          case Opcode::Cmplti:
            wr(static_cast<std::int32_t>(rs) < a.imm);
            break;
          case Opcode::Cmpltui:
            wr(rs < static_cast<Word>(a.imm));
            break;
          case Opcode::Muli: wr(rs * static_cast<Word>(a.imm)); break;

          case Opcode::Add: wr(rr + rs); break;
          case Opcode::Sub: wr(rr - rs); break;
          case Opcode::And: wr(rr & rs); break;
          case Opcode::Or: wr(rr | rs); break;
          case Opcode::Xor: wr(rr ^ rs); break;
          case Opcode::Shl: wr(rr << (rs & 31)); break;
          case Opcode::Shr: wr(rr >> (rs & 31)); break;
          case Opcode::Mov: wr(rs); break;
          case Opcode::Not: wr(~rs); break;
          case Opcode::Neg: wr(0u - rs); break;
          case Opcode::Mul: wr(rr * rs); break;
          case Opcode::Min: wr(std::min(rr, rs)); break;
          case Opcode::Max: wr(std::max(rr, rs)); break;
          case Opcode::Cmpeq: wr(rr == rs); break;
          case Opcode::Cmplt: wr(rr < rs); break;
          case Opcode::Select: wr(regs_[a.dst] ? rr : rs); break;

          case Opcode::Ldw:
            wr(mem_read32(rs + static_cast<Word>(a.imm)));
            break;
          case Opcode::Stw:
            mem_write32(rs + static_cast<Word>(a.imm), regs_[a.dst]);
            break;
          case Opcode::Ldb:
            wr(mem_read8(rs + static_cast<Word>(a.imm)));
            break;
          case Opcode::Stb:
            mem_write8(rs + static_cast<Word>(a.imm),
                       static_cast<std::uint8_t>(regs_[a.dst]));
            break;
          case Opcode::Bininc: {
            const Word addr_b = rs * 4 + static_cast<Word>(a.imm);
            mem_write32(addr_b, mem_read32(addr_b) + 1);
            break;
          }

          case Opcode::Setss:
            if (a.imm < 1 || a.imm > 32)
                throw UdpFaultError(FaultCode::BadAction,
                                    "Lane: setss width must be 1..32");
            symbol_bits_ = static_cast<unsigned>(a.imm);
            break;
          case Opcode::Setssr:
            if (rs < 1 || rs > 32)
                throw UdpFaultError(FaultCode::BadAction,
                                    "Lane: setssr width must be 1..32");
            symbol_bits_ = rs;
            break;
          case Opcode::Setbase:
            if (a.dst == 0)
                window_base_ = rs + static_cast<Word>(a.imm);
            else
                dispatch_base_ = rs + static_cast<Word>(a.imm);
            break;
          case Opcode::Setab:
            action_base_ = rs + static_cast<Word>(a.imm);
            action_scale_ = static_cast<unsigned>(a.imm1);
            break;
          case Opcode::Skip:
            sb_.skip(static_cast<std::uint64_t>(a.imm));
            stats_.stream_bits += static_cast<std::uint64_t>(a.imm);
            break;
          case Opcode::Refill:
            sb_.refill(static_cast<std::uint64_t>(a.imm));
            stats_.stream_bits -= static_cast<std::uint64_t>(a.imm);
            break;
          case Opcode::Peek:
            wr(sb_.exhausted(static_cast<unsigned>(a.imm))
                   ? 0u
                   : sb_.peek(static_cast<unsigned>(a.imm)));
            break;
          case Opcode::Read:
            // An action-unit read; does not disturb the dispatch unit's
            // latched symbol (Lastsym).
            stats_.stream_bits += static_cast<unsigned>(a.imm);
            wr(sb_.read(static_cast<unsigned>(a.imm)));
            break;
          case Opcode::Tell:
            wr(static_cast<Word>(sb_.pos_bits()));
            break;
          case Opcode::Lastsym:
            wr(last_symbol_);
            break;
          case Opcode::Setstream: {
            const std::uint64_t bit_pos = std::uint64_t{rs} +
                                          static_cast<std::uint64_t>(a.imm);
            const std::uint64_t old = sb_.pos_bits();
            sb_.seek_bits(bit_pos);
            stats_.stream_bits += bit_pos - old; // net consumption delta
            break;
          }

          case Opcode::Emitlut: {
            const Word entry =
                rs + ((static_cast<Word>(a.imm) << 8) | last_symbol_) * 16;
            const std::uint8_t count = mem_read8(entry);
            if (count > 15)
                throw UdpFaultError(
                    FaultCode::BadAction,
                    "Lane: emitlut entry count exceeds 15");
            ++stats_.cycles; // table fetch pipeline stage
            for (unsigned i = 0; i < count; ++i)
                out_byte(mem_.read8(mem_translate(entry + 1 + i)));
            ++stats_.mem_reads; // one 8-byte-wide entry fetch
            if constexpr (Instrumented) {
                if (tracer_)
                    tracer_->record(id_, TraceEventKind::MemRead,
                                    stats_.cycles, entry, 0);
            }
            break;
          }
          case Opcode::Hash:
            wr(hash_mix(rs, static_cast<unsigned>(a.imm)));
            break;
          case Opcode::Hash2:
            wr(hash_mix(rr ^ (rs * 0x85EBCA6Bu), 0));
            break;
          case Opcode::Loopcmp: {
            const Word bound = regs_[a.dst];
            Word n = 0;
            while (n < bound && mem_read8(rr + n) == mem_read8(rs + n))
                ++n;
            // The byte loop above charged per-byte refs; model the 8-byte
            // datapath by charging ceil cycles instead of per-byte ones.
            stats_.cycles += ceil_div(std::max<Word>(n, 1), 8) - 1;
            wr(n);
            break;
          }
          case Opcode::Loopcpy: {
            const Word n = regs_[a.dst];
            // Forward byte order: overlapping copies replicate the prefix
            // (LZ77 semantics required by Snappy decode).
            for (Word i = 0; i < n; ++i)
                mem_write8(rr + i, mem_read8(rs + i));
            stats_.cycles += n ? ceil_div(n, 8) - 1 : 0;
            break;
          }
          case Opcode::Loopcpyo: {
            const Word n = regs_[a.dst];
            for (Word i = 0; i < n; ++i)
                out_byte(mem_read8(rs + i));
            stats_.cycles += n ? ceil_div(n, 8) - 1 : 0;
            break;
          }
          case Opcode::Crc:
            wr(crc32c_table()[(regs_[a.dst] ^ rs) & 0xFF] ^
               (regs_[a.dst] >> 8));
            break;

          case Opcode::Outb: out_byte(static_cast<std::uint8_t>(rs)); break;
          case Opcode::Outw:
            out_byte(static_cast<std::uint8_t>(rs));
            out_byte(static_cast<std::uint8_t>(rs >> 8));
            out_byte(static_cast<std::uint8_t>(rs >> 16));
            out_byte(static_cast<std::uint8_t>(rs >> 24));
            break;
          case Opcode::Outbits:
            out_bits(rs, static_cast<unsigned>(a.imm));
            break;
          case Opcode::Outflush: out_flush(); break;
          case Opcode::Outi:
            out_byte(static_cast<std::uint8_t>(a.imm));
            break;
          case Opcode::Outbitsr:
            if (regs_[a.dst] >= 1 && regs_[a.dst] <= 32)
                out_bits(rs, regs_[a.dst]);
            else if (regs_[a.dst] != 0)
                throw UdpFaultError(FaultCode::BadAction,
                                    "Lane: outbitsr width must be 0..32");
            break;

          case Opcode::Accept:
            ++stats_.accepts;
            if constexpr (Instrumented) {
                if (tracer_)
                    tracer_->record(id_, TraceEventKind::Accept,
                                    stats_.cycles,
                                    static_cast<std::uint32_t>(a.imm), 0);
            }
            if (accepts_.size() < accept_capacity_) {
                accepts_.push_back(
                    {sb_.pos_bits(), static_cast<Word>(a.imm)});
            }
            break;
          case Opcode::Halt:
            if constexpr (Instrumented) {
                if (profiler_)
                    profiler_->record_action(a.op, 1);
            }
            return LaneStatus::Done;
          case Opcode::Fail:
            if constexpr (Instrumented) {
                if (profiler_)
                    profiler_->record_action(a.op, 1);
            }
            return LaneStatus::Reject;
          case Opcode::Gotoact:
            if constexpr (Instrumented) {
                if (profiler_)
                    profiler_->record_action(a.op, 1);
            }
            addr = static_cast<std::size_t>(a.imm);
            continue; // `last` is irrelevant on a taken goto
          case Opcode::Nop: break;

          default:
            throw UdpFaultError(FaultCode::UnimplementedOpcode,
                                "Lane: unimplemented opcode");
        }

        if constexpr (Instrumented) {
            if (profiler_)
                profiler_->record_action(a.op,
                                         1 + (stats_.cycles - act_start));
        }
        if (a.last)
            return LaneStatus::Running;
        ++addr;
    }
}

LaneStatus
Lane::exec_actions(std::size_t addr)
{
    return exec_actions_impl<true, false>(addr);
}

// ---------------------------------------------------------------------------
// Run loops.
// ---------------------------------------------------------------------------

template <bool Instrumented>
LaneStatus
Lane::advance_one(const DecodedState &ds)
{
    StepResult r;
    if constexpr (Instrumented) {
        if (profiler_) {
            // Everything the step charges (dispatch, miss penalty,
            // attached actions, stalls) is attributed to this state.
            const Cycles c0 = stats_.cycles;
            const std::uint64_t m0 = stats_.sig_misses;
            const std::uint64_t s0 = stats_.stall_cycles;
            r = step_fast<Instrumented>(ds);
            if (stats_.cycles != c0) // zero delta = end-of-stream probe
                profiler_->record_state(
                    static_cast<std::uint32_t>(cur_state_),
                    stats_.cycles - c0, stats_.sig_misses - m0,
                    stats_.stall_cycles - s0);
        } else {
            r = step_fast<Instrumented>(ds);
        }
    } else {
        r = step_fast<Instrumented>(ds);
    }
    if (r.status != LaneStatus::Running) {
        halted_ = true;
        halt_status_ = r.status;
        return r.status;
    }
    if (!r.took_transition) {
        halted_ = true;
        halt_status_ = LaneStatus::Reject;
        return LaneStatus::Reject;
    }
    // 12-bit targets are window-relative; rebase into the current
    // dispatch window (Setbase may have moved it during actions).
    cur_state_ = dispatch_base_ + r.next_base;
    return LaneStatus::Running;
}

template <bool Instrumented>
LaneStatus
Lane::run_steps_fast(std::uint64_t n)
{
    const DecodedProgram &dec = *decoded_;
    for (std::uint64_t i = 0; i < n; ++i) {
        const DecodedState *ds = dec.state_at(cur_state_);
        if (!ds)
            throw UdpFaultError(
                FaultCode::BadDispatch,
                "Lane: dispatch into unknown state base " +
                    std::to_string(cur_state_));
        const LaneStatus st = advance_one<Instrumented>(*ds);
        if (st != LaneStatus::Running)
            return st;
    }
    return LaneStatus::Running;
}

LaneStatus
Lane::run_steps_legacy(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        const StateMeta *meta = prog_->find_state(cur_state_);
        if (!meta)
            throw UdpFaultError(
                FaultCode::BadDispatch,
                "Lane: dispatch into unknown state base " +
                    std::to_string(cur_state_));
        StepResult r;
        if (profiler_) {
            // Everything the step charges (dispatch, miss penalty,
            // attached actions, stalls) is attributed to this state.
            const Cycles c0 = stats_.cycles;
            const std::uint64_t m0 = stats_.sig_misses;
            const std::uint64_t s0 = stats_.stall_cycles;
            r = step(*meta);
            if (stats_.cycles != c0) // zero delta = end-of-stream probe
                profiler_->record_state(
                    static_cast<std::uint32_t>(cur_state_),
                    stats_.cycles - c0, stats_.sig_misses - m0,
                    stats_.stall_cycles - s0);
        } else {
            r = step(*meta);
        }
        if (r.status != LaneStatus::Running) {
            halted_ = true;
            halt_status_ = r.status;
            return r.status;
        }
        if (!r.took_transition) {
            halted_ = true;
            halt_status_ = LaneStatus::Reject;
            return LaneStatus::Reject;
        }
        // 12-bit targets are window-relative; rebase into the current
        // dispatch window (Setbase may have moved it during actions).
        cur_state_ = dispatch_base_ + r.next_base;
    }
    return LaneStatus::Running;
}

LaneStatus
Lane::run_steps(std::uint64_t n)
{
    if (!prog_)
        throw UdpError("Lane: no program loaded");
    if (halted_)
        return halt_status_;
    if (!started_) {
        cur_state_ = prog_->entry;
        started_ = true;
    }
    resume_ds_ = nullptr; // step_once owns the carry-over
    resume_cs_ = ThreadedEngine::kNoResume;
    return run_guarded([&] {
        if (compiled_ && !tracer_ && !profiler_) {
            std::int32_t carry = ThreadedEngine::kNoResume;
            return ThreadedEngine::run_steps_body(*this, n, carry);
        }
        if (!decoded_)
            return run_steps_legacy(n);
        return (tracer_ || profiler_) ? run_steps_fast<true>(n)
                                      : run_steps_fast<false>(n);
    });
}

LaneStatus
Lane::step_once()
{
    if (!prog_)
        throw UdpError("Lane: no program loaded");
    if (halted_)
        return halt_status_;
    if (trap_cycle_ != 0 && stats_.cycles >= trap_cycle_)
        return trap(FaultCode::ForcedTrap,
                    "Lane: forced trap (fault injection)");
    if (!started_) {
        cur_state_ = prog_->entry;
        started_ = true;
        resume_ds_ = nullptr;
        resume_cs_ = ThreadedEngine::kNoResume;
    }
    return run_guarded([&] {
        if (compiled_ && !tracer_ && !profiler_) {
            const LaneStatus st =
                ThreadedEngine::run_steps_body(*this, 1, resume_cs_);
            // An unknown next state leaves a negative carry and faults
            // on the *next* step, exactly like the decoded path.
            if (st != LaneStatus::Running)
                resume_cs_ = ThreadedEngine::kNoResume;
            return st;
        }
        if (!decoded_)
            return run_steps_legacy(1);
        const DecodedState *ds = resume_ds_;
        if (!ds) {
            ds = decoded_->state_at(cur_state_);
            if (!ds)
                throw UdpFaultError(
                    FaultCode::BadDispatch,
                    "Lane: dispatch into unknown state base " +
                        std::to_string(cur_state_));
        }
        const LaneStatus st = (tracer_ || profiler_)
                                  ? advance_one<true>(*ds)
                                  : advance_one<false>(*ds);
        // An unknown next state stays null here and faults on the *next*
        // step, exactly when the legacy path would notice it.
        resume_ds_ = (st == LaneStatus::Running)
                         ? decoded_->state_at(cur_state_)
                         : nullptr;
        return st;
    });
}

LaneStatus
Lane::run(std::uint64_t max_cycles)
{
    // With a forced trap armed, advance one dispatch step at a time so
    // the trap lands deterministically at the first step boundary at or
    // after the armed cycle (host-side granularity only; simulated
    // results below the trap point are unchanged).
    const std::uint64_t chunk = trap_cycle_ != 0 ? 1 : 1024;
    for (;;) {
        const LaneStatus st = run_steps(chunk);
        if (st != LaneStatus::Running)
            return st;
        if (trap_cycle_ != 0 && stats_.cycles >= trap_cycle_)
            return trap(FaultCode::ForcedTrap,
                        "Lane: forced trap (fault injection)");
        if (stats_.cycles >= max_cycles)
            return trip_watchdog("Lane: cycle budget (" +
                                 std::to_string(max_cycles) +
                                 ") exhausted before completion");
    }
}

LaneStatus
Lane::run_nfa(std::uint64_t max_cycles)
{
    if (!prog_)
        throw UdpError("Lane: no program loaded");
    resume_ds_ = nullptr;
    return run_guarded([&] {
        if (!decoded_)
            return run_nfa_legacy(max_cycles);
        return (tracer_ || profiler_) ? run_nfa_fast<true>(max_cycles)
                                      : run_nfa_fast<false>(max_cycles);
    });
}

/**
 * Fast NFA executor: the epsilon-closure and fallback chain decodes are
 * unified on the predecoded per-state chains (DecodedState::epsilons /
 * miss_nfa), so DFA and NFA modes read the same tables and cannot
 * drift.  Charging mirrors run_nfa_legacy bit for bit.
 */
template <bool Instrumented>
LaneStatus
Lane::run_nfa_fast(std::uint64_t max_cycles)
{
    const DecodedProgram &dec = *decoded_;

    // Active-state set with epsilon closure on activation. Frontier order
    // is deterministic; duplicates are suppressed with a stamp array.
    // Active entries are full word addresses.
    std::vector<std::size_t> active{prog_->entry};
    std::vector<std::size_t> next;
    std::vector<std::uint32_t> stamp(dec.dispatch_words(), 0);
    std::uint32_t generation = 0;

    auto close = [&](std::vector<std::size_t> &set) {
        ++generation;
        for (auto b : set)
            stamp[b] = generation;
        for (std::size_t i = 0; i < set.size(); ++i) {
            const DecodedState *ds = dec.state_at(set[i]);
            if (!ds)
                throw UdpFaultError(
                    FaultCode::BadDispatch,
                    "Lane: NFA activation of unknown state");
            for (const Transition *t = dec.eps_begin(*ds),
                                  *e = dec.eps_end(*ds);
                 t != e; ++t) {
                const std::size_t tgt = dispatch_base_ + t->target;
                if (stamp[tgt] == generation)
                    continue;
                // Epsilon activation costs one dispatch cycle.
                ++stats_.cycles;
                ++stats_.dispatches;
                ++stats_.dispatch_reads;
                if constexpr (Instrumented) {
                    if (tracer_)
                        tracer_->record(
                            id_, TraceEventKind::Dispatch, stats_.cycles,
                            static_cast<std::uint32_t>(tgt), 0);
                    if (profiler_)
                        profiler_->record_state(
                            static_cast<std::uint32_t>(tgt), 1, 0, 0);
                }
                stamp[tgt] = generation;
                set.push_back(tgt);
                std::size_t act;
                if (attach_addr(*t, act))
                    exec_actions_impl<Instrumented, true>(act);
            }
        }
    };

    close(active);
    const unsigned width = symbol_bits_;

    while (!active.empty() && stats_.cycles < max_cycles) {
        if (trap_cycle_ != 0 && stats_.cycles >= trap_cycle_)
            return trap(FaultCode::ForcedTrap,
                        "Lane: forced trap (fault injection)");
        if (sb_.exhausted(width))
            return LaneStatus::Done;
        const Word sym = fetch_symbol_bits(width);

        next.clear();
        ++generation;
        for (const auto cur : active) {
            const DecodedState *dsp = dec.state_at(cur);
            if (!dsp)
                throw UdpFaultError(
                    FaultCode::BadDispatch,
                    "Lane: NFA dispatch into unknown state");
            const DecodedState &ds = *dsp;
            const std::size_t base = ds.base;

            Cycles prof_c0 = 0;
            std::uint64_t prof_m0 = 0, prof_s0 = 0;
            if constexpr (Instrumented) {
                prof_c0 = stats_.cycles;
                prof_m0 = stats_.sig_misses;
                prof_s0 = stats_.stall_cycles;
            }

            ++stats_.dispatches;
            ++stats_.cycles;
            if constexpr (Instrumented) {
                if (tracer_)
                    tracer_->record(id_, TraceEventKind::Dispatch,
                                    stats_.cycles,
                                    static_cast<std::uint32_t>(base),
                                    sym);
            }

            Transition taken;
            bool have = false;
            const std::size_t slot = base + sym;
            if (slot < dec.dispatch_words() && sym <= ds.max_symbol) {
                ++stats_.dispatch_reads;
                const Transition &t = dec.transition(slot);
                if (t.type == kInvalidTransitionType)
                    decode_transition(prog_->dispatch[slot]); // throws
                if (t.signature == ds.signature &&
                    (t.type == TransitionType::Labeled ||
                     t.type == TransitionType::Refill)) {
                    taken = t;
                    have = true;
                }
            }
            if (!have) {
                ++stats_.sig_misses;
                ++stats_.cycles;
                if constexpr (Instrumented) {
                    if (tracer_)
                        tracer_->record(id_, TraceEventKind::SigMiss,
                                        stats_.cycles,
                                        static_cast<std::uint32_t>(base),
                                        sym);
                }
                stats_.dispatch_reads += ds.miss_nfa_reads;
                if (ds.has_miss_nfa) {
                    taken = ds.miss_nfa;
                    have = true;
                }
            }
            if (have) {
                const std::size_t tgt = dispatch_base_ + taken.target;
                if (stamp[tgt] != generation) {
                    stamp[tgt] = generation;
                    next.push_back(tgt);
                    // Activation happens once per step; arc actions fire
                    // with the first arc that activates the target.
                    std::size_t act;
                    if (attach_addr(taken, act))
                        exec_actions_impl<Instrumented, true>(act);
                }
            }
            // `have == false`: this activation dies, after charging the
            // dispatch + miss cycles profiled below.
            if constexpr (Instrumented) {
                if (profiler_)
                    profiler_->record_state(
                        static_cast<std::uint32_t>(base),
                        stats_.cycles - prof_c0,
                        stats_.sig_misses - prof_m0,
                        stats_.stall_cycles - prof_s0);
            }
        }
        close(next);
        // close() bumps the generation; re-stamp for the swap below is
        // unnecessary since `next` is already duplicate-free.
        active.swap(next);
    }
    if (active.empty())
        return LaneStatus::Reject;
    // Loop exit with live activations means the watchdog fired, not a
    // clean end of stream.
    return trip_watchdog("Lane: NFA cycle budget (" +
                         std::to_string(max_cycles) +
                         ") exhausted before completion");
}

LaneStatus
Lane::run_nfa_legacy(std::uint64_t max_cycles)
{
    // Active-state set with epsilon closure on activation. Frontier order
    // is deterministic; duplicates are suppressed with a stamp array.
    // Active entries are full word addresses.
    std::vector<std::size_t> active{prog_->entry};
    std::vector<std::size_t> next;
    std::vector<std::uint32_t> stamp(prog_->dispatch.size(), 0);
    std::uint32_t generation = 0;

    auto close = [&](std::vector<std::size_t> &set) {
        ++generation;
        for (auto b : set)
            stamp[b] = generation;
        for (std::size_t i = 0; i < set.size(); ++i) {
            const StateMeta *meta = prog_->find_state(set[i]);
            if (!meta)
                throw UdpFaultError(
                    FaultCode::BadDispatch,
                    "Lane: NFA activation of unknown state");
            const std::size_t base = meta->base;
            const std::uint8_t sig = state_signature(meta->base);
            for (unsigned k = 1; k <= meta->aux_count; ++k) {
                const Transition t =
                    decode_transition(prog_->dispatch[base - k]);
                const std::size_t tgt = dispatch_base_ + t.target;
                if (t.signature == sig &&
                    t.type == TransitionType::Epsilon &&
                    stamp[tgt] != generation) {
                    // Epsilon activation costs one dispatch cycle.
                    ++stats_.cycles;
                    ++stats_.dispatches;
                    ++stats_.dispatch_reads;
                    if (tracer_)
                        tracer_->record(
                            id_, TraceEventKind::Dispatch, stats_.cycles,
                            static_cast<std::uint32_t>(tgt), 0);
                    if (profiler_)
                        profiler_->record_state(
                            static_cast<std::uint32_t>(tgt), 1, 0, 0);
                    stamp[tgt] = generation;
                    set.push_back(tgt);
                    std::size_t act;
                    if (attach_addr(t, act))
                        exec_actions(act);
                }
            }
        }
    };

    close(active);
    const unsigned width = symbol_bits_;

    while (!active.empty() && stats_.cycles < max_cycles) {
        if (trap_cycle_ != 0 && stats_.cycles >= trap_cycle_)
            return trap(FaultCode::ForcedTrap,
                        "Lane: forced trap (fault injection)");
        if (sb_.exhausted(width))
            return LaneStatus::Done;
        const Word sym = fetch_symbol_bits(width);

        next.clear();
        ++generation;
        for (const auto cur : active) {
            const StateMeta *meta = prog_->find_state(cur);
            if (!meta)
                throw UdpFaultError(
                    FaultCode::BadDispatch,
                    "Lane: NFA dispatch into unknown state");
            const std::size_t base = meta->base;
            const std::uint8_t sig = state_signature(meta->base);

            const Cycles prof_c0 = stats_.cycles;
            const std::uint64_t prof_m0 = stats_.sig_misses;
            const std::uint64_t prof_s0 = stats_.stall_cycles;

            ++stats_.dispatches;
            ++stats_.cycles;
            if (tracer_)
                tracer_->record(id_, TraceEventKind::Dispatch,
                                stats_.cycles,
                                static_cast<std::uint32_t>(base), sym);

            Transition taken;
            bool have = false;
            const std::size_t slot = base + sym;
            if (slot < prog_->dispatch.size() && sym <= meta->max_symbol) {
                const Transition t = decode_transition(dispatch_word(slot));
                if (t.signature == sig &&
                    (t.type == TransitionType::Labeled ||
                     t.type == TransitionType::Refill)) {
                    taken = t;
                    have = true;
                }
            }
            if (!have) {
                ++stats_.sig_misses;
                ++stats_.cycles;
                if (tracer_)
                    tracer_->record(id_, TraceEventKind::SigMiss,
                                    stats_.cycles,
                                    static_cast<std::uint32_t>(base),
                                    sym);
                for (unsigned k = 1; k <= meta->aux_count; ++k) {
                    const Transition t =
                        decode_transition(dispatch_word(base - k));
                    if (t.signature != sig)
                        break;
                    if (t.type == TransitionType::Majority ||
                        t.type == TransitionType::Default ||
                        t.type == TransitionType::Common) {
                        taken = t;
                        have = true;
                        break;
                    }
                }
            }
            if (have) {
                const std::size_t tgt = dispatch_base_ + taken.target;
                if (stamp[tgt] != generation) {
                    stamp[tgt] = generation;
                    next.push_back(tgt);
                    // Activation happens once per step; arc actions fire
                    // with the first arc that activates the target.
                    std::size_t act;
                    if (attach_addr(taken, act))
                        exec_actions(act);
                }
            }
            // `have == false`: this activation dies, after charging the
            // dispatch + miss cycles profiled below.
            if (profiler_)
                profiler_->record_state(
                    static_cast<std::uint32_t>(base),
                    stats_.cycles - prof_c0, stats_.sig_misses - prof_m0,
                    stats_.stall_cycles - prof_s0);
        }
        close(next);
        // close() bumps the generation; re-stamp for the swap below is
        // unnecessary since `next` is already duplicate-free.
        active.swap(next);
    }
    if (active.empty())
        return LaneStatus::Reject;
    // Loop exit with live activations means the watchdog fired, not a
    // clean end of stream.
    return trip_watchdog("Lane: NFA cycle budget (" +
                         std::to_string(max_cycles) +
                         ") exhausted before completion");
}

} // namespace udp
