/**
 * @file
 * Local memory and bank arbitration implementation.
 */
#include "local_memory.hpp"

#include "fault.hpp"

namespace udp {

std::string_view
addressing_mode_name(AddressingMode m)
{
    switch (m) {
      case AddressingMode::Local: return "local";
      case AddressingMode::Global: return "global";
      case AddressingMode::Restricted: return "restricted";
    }
    return "<bad>";
}

double
memory_ref_energy_pj(AddressingMode m)
{
    // Fig 11c (CACTI 6.5, 1 MiB, 64 banks): banked local/restricted access
    // costs 4.3 pJ/ref; a global crossbar more than doubles it to 8.8.
    return m == AddressingMode::Global ? 8.8 : 4.3;
}

LocalMemory::LocalMemory(AddressingMode mode)
    : mode_(mode), mem_(kLocalMemBytes, 0)
{
}

void
LocalMemory::clear()
{
    std::fill(mem_.begin(), mem_.end(), 0);
}

ByteAddr
LocalMemory::translate(unsigned lane, ByteAddr addr, ByteAddr base) const
{
    switch (mode_) {
      case AddressingMode::Local:
        // Lane-private bank; address wraps inside the 16 KiB bank.
        if (addr >= kBankBytes)
            throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "LocalMemory: local-mode address exceeds bank");
        return static_cast<ByteAddr>(lane * kBankBytes + addr);
      case AddressingMode::Global:
        if (addr >= kLocalMemBytes)
            throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "LocalMemory: global address out of range");
        return addr;
      case AddressingMode::Restricted: {
        const std::uint64_t phys = std::uint64_t{base} + addr;
        if (phys >= kLocalMemBytes)
            throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "LocalMemory: restricted address out of range");
        return static_cast<ByteAddr>(phys);
      }
    }
    throw UdpError("LocalMemory: bad addressing mode");
}

void
LocalMemory::check(ByteAddr phys, std::size_t len) const
{
    if (std::uint64_t{phys} + len > mem_.size())
        throw UdpFaultError(FaultCode::FetchOutOfRange,
                            "LocalMemory: physical access out of range");
}

std::uint8_t
LocalMemory::read8(ByteAddr phys) const
{
    check(phys, 1);
    return mem_[phys];
}

void
LocalMemory::write8(ByteAddr phys, std::uint8_t v)
{
    check(phys, 1);
    mem_[phys] = v;
}

Word
LocalMemory::read32(ByteAddr phys) const
{
    check(phys, 4);
    return Word{mem_[phys]} | (Word{mem_[phys + 1]} << 8) |
           (Word{mem_[phys + 2]} << 16) | (Word{mem_[phys + 3]} << 24);
}

void
LocalMemory::write32(ByteAddr phys, Word v)
{
    check(phys, 4);
    mem_[phys] = static_cast<std::uint8_t>(v);
    mem_[phys + 1] = static_cast<std::uint8_t>(v >> 8);
    mem_[phys + 2] = static_cast<std::uint8_t>(v >> 16);
    mem_[phys + 3] = static_cast<std::uint8_t>(v >> 24);
}

void
BankArbiter::begin_cycle()
{
    reads_.fill(0);
    writes_.fill(0);
}

Cycles
BankArbiter::request(unsigned bank, bool is_write)
{
    if (bank >= kNumBanks)
        throw UdpError("BankArbiter: bank id out of range");
    auto &count = is_write ? writes_[bank] : reads_[bank];
    const Cycles stall = count; // nth same-cycle request waits n cycles
    if (count < 255)
        ++count;
    total_stalls_ += stall;
    return stall;
}

} // namespace udp
