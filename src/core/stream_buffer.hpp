/**
 * @file
 * Per-lane stream buffer with prefetch and variable-size symbol support
 * (paper Sections 3.2.2 and 3.2.3, "SBP Unit" in Figure 23).
 *
 * The stream buffer presents the input as a bit stream.  Symbols of the
 * configured width (symbol-size register: 1..8, 16 or 32 bits) are fetched
 * MSB-first within each byte, which matches bit-packed encodings such as
 * Huffman.  `refill` pushes back over-consumed bits (the SsRef mechanism).
 *
 * The hardware prefetcher keeps the next symbol ready, so fetches cost no
 * extra cycles in the lane model; what the model does charge is the refill
 * transition itself (one dispatch slot).
 */
#pragma once

#include "types.hpp"

namespace udp {

/// Bit-granular input stream for a UDP lane.
class StreamBuffer
{
  public:
    StreamBuffer() = default;

    /// Attach the buffer to `data` and rewind. The data is not copied;
    /// the caller keeps it alive while the lane runs.
    void attach(BytesView data);

    /// Total length in bits.
    std::uint64_t size_bits() const { return size_bits_; }

    /// Current cursor, in bits from the start.
    std::uint64_t pos_bits() const { return pos_bits_; }

    /// Current cursor in whole bytes (architectural r15 value).
    std::uint64_t pos_bytes() const { return pos_bits_ / 8; }

    /// Bits remaining.
    std::uint64_t remaining_bits() const { return size_bits_ - pos_bits_; }

    /// True when fewer than `width` bits remain.
    bool exhausted(unsigned width) const { return remaining_bits() < width; }

    /**
     * Consume `width` bits (1..32) and return them right-aligned.
     * Bits are taken MSB-first. Throws UdpError past end of stream.
     */
    Word read(unsigned width);

    /// Read without consuming.
    Word peek(unsigned width) const;

    /// Advance the cursor by `nbits` without delivering data.
    void skip(std::uint64_t nbits);

    /// Push back `nbits` previously consumed bits (refill transition).
    void refill(std::uint64_t nbits);

    /// Absolute reposition (Setstream action), in bits.
    void seek_bits(std::uint64_t bit_pos);

    /// Byte at absolute byte offset (loop-compare/copy source view).
    BytesView data() const { return data_; }

  private:
    /// The threaded-code backend reads byte-aligned whole-byte symbols
    /// directly (core/threaded_program.hpp) — same values as read(8).
    friend class ThreadedEngine;
    BytesView data_{};
    std::uint64_t size_bits_ = 0;
    std::uint64_t pos_bits_ = 0;
};

} // namespace udp
