/**
 * @file
 * ISA encode/decode and name tables.
 */
#include "isa.hpp"

#include "fault.hpp"

#include <unordered_map>

namespace udp {

namespace {

struct OpInfo {
    Opcode op;
    ActionFormat format;
    std::string_view name;
};

// Single source of truth for opcode metadata.
constexpr OpInfo kOps[] = {
    {Opcode::Addi, ActionFormat::Imm, "addi"},
    {Opcode::Subi, ActionFormat::Imm, "subi"},
    {Opcode::Andi, ActionFormat::Imm, "andi"},
    {Opcode::Ori, ActionFormat::Imm, "ori"},
    {Opcode::Xori, ActionFormat::Imm, "xori"},
    {Opcode::Shli, ActionFormat::Imm, "shli"},
    {Opcode::Shri, ActionFormat::Imm, "shri"},
    {Opcode::Sari, ActionFormat::Imm, "sari"},
    {Opcode::Movi, ActionFormat::Imm, "movi"},
    {Opcode::Lui, ActionFormat::Imm, "lui"},
    {Opcode::Cmpeqi, ActionFormat::Imm, "cmpeqi"},
    {Opcode::Cmplti, ActionFormat::Imm, "cmplti"},
    {Opcode::Cmpltui, ActionFormat::Imm, "cmpltui"},
    {Opcode::Muli, ActionFormat::Imm, "muli"},

    {Opcode::Add, ActionFormat::Reg, "add"},
    {Opcode::Sub, ActionFormat::Reg, "sub"},
    {Opcode::And, ActionFormat::Reg, "and"},
    {Opcode::Or, ActionFormat::Reg, "or"},
    {Opcode::Xor, ActionFormat::Reg, "xor"},
    {Opcode::Shl, ActionFormat::Reg, "shl"},
    {Opcode::Shr, ActionFormat::Reg, "shr"},
    {Opcode::Mov, ActionFormat::Reg, "mov"},
    {Opcode::Not, ActionFormat::Reg, "not"},
    {Opcode::Neg, ActionFormat::Reg, "neg"},
    {Opcode::Mul, ActionFormat::Reg, "mul"},
    {Opcode::Min, ActionFormat::Reg, "min"},
    {Opcode::Max, ActionFormat::Reg, "max"},
    {Opcode::Cmpeq, ActionFormat::Reg, "cmpeq"},
    {Opcode::Cmplt, ActionFormat::Reg, "cmplt"},
    {Opcode::Select, ActionFormat::Reg, "select"},

    {Opcode::Ldw, ActionFormat::Imm, "ldw"},
    {Opcode::Stw, ActionFormat::Imm, "stw"},
    {Opcode::Ldb, ActionFormat::Imm, "ldb"},
    {Opcode::Stb, ActionFormat::Imm, "stb"},
    {Opcode::Bininc, ActionFormat::Imm, "bininc"},

    {Opcode::Setss, ActionFormat::Imm, "setss"},
    {Opcode::Setssr, ActionFormat::Imm, "setssr"},
    {Opcode::Setbase, ActionFormat::Imm, "setbase"},
    {Opcode::Setab, ActionFormat::Imm2, "setab"},
    {Opcode::Skip, ActionFormat::Imm, "skip"},
    {Opcode::Refill, ActionFormat::Imm, "refill"},
    {Opcode::Peek, ActionFormat::Imm, "peek"},
    {Opcode::Read, ActionFormat::Imm, "read"},
    {Opcode::Tell, ActionFormat::Imm, "tell"},
    {Opcode::Setstream, ActionFormat::Imm, "setstream"},
    {Opcode::Lastsym, ActionFormat::Imm, "lastsym"},

    {Opcode::Emitlut, ActionFormat::Imm, "emitlut"},
    {Opcode::Hash, ActionFormat::Imm, "hash"},
    {Opcode::Hash2, ActionFormat::Reg, "hash2"},
    {Opcode::Loopcmp, ActionFormat::Reg, "loopcmp"},
    {Opcode::Loopcpy, ActionFormat::Reg, "loopcpy"},
    {Opcode::Loopcpyo, ActionFormat::Reg, "loopcpyo"},
    {Opcode::Crc, ActionFormat::Reg, "crc"},

    {Opcode::Outb, ActionFormat::Imm, "outb"},
    {Opcode::Outw, ActionFormat::Imm, "outw"},
    {Opcode::Outbits, ActionFormat::Imm, "outbits"},
    {Opcode::Outflush, ActionFormat::Imm, "outflush"},
    {Opcode::Outi, ActionFormat::Imm, "outi"},
    {Opcode::Outbitsr, ActionFormat::Imm, "outbitsr"},

    {Opcode::Accept, ActionFormat::Imm, "accept"},
    {Opcode::Halt, ActionFormat::Imm, "halt"},
    {Opcode::Fail, ActionFormat::Imm, "fail"},
    {Opcode::Gotoact, ActionFormat::Imm, "gotoact"},
    {Opcode::Nop, ActionFormat::Imm, "nop"},
};

const OpInfo *
find_op(Opcode op)
{
    for (const auto &info : kOps)
        if (info.op == op)
            return &info;
    return nullptr;
}

constexpr std::string_view kTransitionNames[kNumTransitionTypes] = {
    "labeled", "majority", "default", "epsilon", "common", "flagged",
    "refill",
};

} // namespace

ActionFormat
action_format(Opcode op)
{
    const OpInfo *info = find_op(op);
    if (!info)
        throw UdpError("action_format: undefined opcode");
    return info->format;
}

std::string_view
opcode_name(Opcode op)
{
    const OpInfo *info = find_op(op);
    return info ? info->name : "<bad>";
}

std::optional<Opcode>
opcode_from_name(std::string_view name)
{
    for (const auto &info : kOps)
        if (info.name == name)
            return info.op;
    return std::nullopt;
}

std::string_view
transition_type_name(TransitionType t)
{
    const auto idx = static_cast<unsigned>(t);
    if (idx >= kNumTransitionTypes)
        return "<bad>";
    return kTransitionNames[idx];
}

bool
opcode_valid(Word raw)
{
    return find_op(static_cast<Opcode>(raw)) != nullptr;
}

// --------------------------------------------------------------------------
// Transition: signature(8) @24 | target(12) @12 | type(4) @8 | attach(8) @0
//
// Layout note: we place fields MSB-first in declaration order of Figure 6.
// type(4) = mode(1 bit, bit 11 of the field group) | kind(3 bits).
// --------------------------------------------------------------------------

Word
encode_transition(const Transition &t)
{
    if (t.target >= kDispatchWords)
        throw UdpError("encode_transition: target exceeds 12 bits");
    const auto kind = static_cast<Word>(t.type);
    if (kind >= kNumTransitionTypes)
        throw UdpError("encode_transition: bad transition type");
    const Word type_field =
        kind | (t.attach_mode == AttachMode::ScaledOffset ? 0x8u : 0u);
    return make_bits(t.signature, 24, 8) | make_bits(t.target, 12, 12) |
           make_bits(type_field, 8, 4) | make_bits(t.attach, 0, 8);
}

Transition
decode_transition(Word raw)
{
    Transition t;
    t.signature = static_cast<std::uint8_t>(bits(raw, 24, 8));
    t.target = static_cast<DispatchAddr>(bits(raw, 12, 12));
    const Word type_field = bits(raw, 8, 4);
    const Word kind = type_field & 0x7;
    if (kind >= kNumTransitionTypes)
        throw UdpFaultError(FaultCode::BadDispatch,
                            "decode_transition: bad transition type");
    t.type = static_cast<TransitionType>(kind);
    t.attach_mode =
        (type_field & 0x8) ? AttachMode::ScaledOffset : AttachMode::Direct;
    t.attach = static_cast<std::uint8_t>(bits(raw, 0, 8));
    return t;
}

// --------------------------------------------------------------------------
// Actions: opcode(7) @25 | last(1) @24 | format-specific fields below.
//   Imm : dst(4) @20 | src(4) @16 | imm16 @0
//   Imm2: dst(4) @20 | src(4) @16 | imm1(4) @12 | imm2(12) @0
//   Reg : dst(4) @20 | ref(4) @16 | src(4) @12 | unused(12)
// --------------------------------------------------------------------------

Word
encode_action(const Action &a)
{
    const OpInfo *info = find_op(a.op);
    if (!info)
        throw UdpError("encode_action: undefined opcode");
    if (a.dst >= kNumScalarRegs || a.src >= kNumScalarRegs ||
        a.ref >= kNumScalarRegs) {
        throw UdpError("encode_action: register index exceeds 4 bits");
    }

    Word raw = make_bits(static_cast<Word>(a.op), 25, 7) |
               make_bits(a.last ? 1 : 0, 24, 1) | make_bits(a.dst, 20, 4);

    switch (info->format) {
      case ActionFormat::Imm: {
        const bool zero_ext = a.op == Opcode::Andi || a.op == Opcode::Ori ||
                              a.op == Opcode::Xori || a.op == Opcode::Lui;
        const bool fits = zero_ext ? (a.imm >= 0 && a.imm <= 65535)
                                   : (a.imm >= -32768 && a.imm <= 32767);
        if (!fits)
            throw UdpError("encode_action: imm16 overflow in " +
                           std::string(info->name));
        raw |= make_bits(a.src, 16, 4) |
               make_bits(static_cast<Word>(a.imm) & 0xFFFF, 0, 16);
        break;
      }
      case ActionFormat::Imm2:
        if (a.imm < 0 || a.imm > 4095)
            throw UdpError("encode_action: imm2 (12-bit) overflow");
        if (a.imm1 < 0 || a.imm1 > 15)
            throw UdpError("encode_action: imm1 (4-bit) overflow");
        raw |= make_bits(a.src, 16, 4) |
               make_bits(static_cast<Word>(a.imm1), 12, 4) |
               make_bits(static_cast<Word>(a.imm), 0, 12);
        break;
      case ActionFormat::Reg:
        raw |= make_bits(a.ref, 16, 4) | make_bits(a.src, 12, 4);
        break;
    }
    return raw;
}

Action
decode_action(Word raw)
{
    const auto op = static_cast<Opcode>(bits(raw, 25, 7));
    const OpInfo *info = find_op(op);
    if (!info)
        throw UdpFaultError(FaultCode::BadAction,
                            "decode_action: undefined opcode " +
                                std::to_string(bits(raw, 25, 7)));

    Action a;
    a.op = op;
    a.last = bits(raw, 24, 1) != 0;
    a.dst = static_cast<std::uint8_t>(bits(raw, 20, 4));

    switch (info->format) {
      case ActionFormat::Imm: {
        a.src = static_cast<std::uint8_t>(bits(raw, 16, 4));
        // imm16 is sign-extended except for the logical-immediate group.
        const Word imm = bits(raw, 0, 16);
        const bool zero_ext = op == Opcode::Andi || op == Opcode::Ori ||
                              op == Opcode::Xori || op == Opcode::Lui;
        a.imm = zero_ext ? static_cast<std::int32_t>(imm)
                         : static_cast<std::int32_t>(
                               static_cast<std::int16_t>(imm));
        break;
      }
      case ActionFormat::Imm2:
        a.src = static_cast<std::uint8_t>(bits(raw, 16, 4));
        a.imm1 = static_cast<std::int32_t>(bits(raw, 12, 4));
        a.imm = static_cast<std::int32_t>(bits(raw, 0, 12));
        break;
      case ActionFormat::Reg:
        a.ref = static_cast<std::uint8_t>(bits(raw, 16, 4));
        a.src = static_cast<std::uint8_t>(bits(raw, 12, 4));
        break;
    }
    return a;
}

} // namespace udp
