/**
 * @file
 * JSON writer and validator implementation.
 */
#include "metrics_json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace udp {

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : os_(os), pretty_(pretty)
{
}

void
JsonWriter::newline_indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::before_value(bool is_key)
{
    if (done_)
        throw UdpError("JsonWriter: document already complete");
    if (stack_.empty()) {
        // Top-level: a single value, no key allowed.
        if (is_key)
            throw UdpError("JsonWriter: key at top level");
        return;
    }
    if (stack_.back() == Ctx::Object) {
        if (is_key) {
            if (key_pending_)
                throw UdpError("JsonWriter: key after key");
            if (has_items_.back())
                os_ << ',';
            newline_indent();
        } else if (!key_pending_) {
            throw UdpError("JsonWriter: value in object without key");
        }
    } else { // Array
        if (is_key)
            throw UdpError("JsonWriter: key inside array");
        if (has_items_.back())
            os_ << ',';
        newline_indent();
    }
}

JsonWriter &
JsonWriter::begin_object()
{
    before_value(false);
    if (!stack_.empty())
        has_items_.back() = true;
    key_pending_ = false;
    os_ << '{';
    stack_.push_back(Ctx::Object);
    has_items_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    if (stack_.empty() || stack_.back() != Ctx::Object || key_pending_)
        throw UdpError("JsonWriter: unbalanced end_object");
    const bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        newline_indent();
    os_ << '}';
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    before_value(false);
    if (!stack_.empty())
        has_items_.back() = true;
    key_pending_ = false;
    os_ << '[';
    stack_.push_back(Ctx::Array);
    has_items_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    if (stack_.empty() || stack_.back() != Ctx::Array)
        throw UdpError("JsonWriter: unbalanced end_array");
    const bool had = has_items_.back();
    stack_.pop_back();
    has_items_.pop_back();
    if (had)
        newline_indent();
    os_ << ']';
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    before_value(true);
    os_ << '"' << json_escape(k) << "\":";
    if (pretty_)
        os_ << ' ';
    key_pending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    before_value(false);
    if (!stack_.empty())
        has_items_.back() = true;
    key_pending_ = false;
    os_ << '"' << json_escape(v) << '"';
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    before_value(false);
    if (!stack_.empty())
        has_items_.back() = true;
    key_pending_ = false;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    before_value(false);
    if (!stack_.empty())
        has_items_.back() = true;
    key_pending_ = false;
    os_ << v;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    before_value(false);
    if (!stack_.empty())
        has_items_.back() = true;
    key_pending_ = false;
    os_ << v;
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    before_value(false);
    if (!stack_.empty())
        has_items_.back() = true;
    key_pending_ = false;
    os_ << (v ? "true" : "false");
    if (stack_.empty())
        done_ = true;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    before_value(false);
    if (!stack_.empty())
        has_items_.back() = true;
    key_pending_ = false;
    os_ << "null";
    if (stack_.empty())
        done_ = true;
    return *this;
}

std::string
json_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Validator: strict recursive-descent over the RFC 8259 grammar.
// ---------------------------------------------------------------------------

namespace {

struct Parser {
    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;
    static constexpr int kMaxDepth = 256;

    bool eof() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    void skip_ws() {
        while (!eof() && (text[pos] == ' ' || text[pos] == '\t' ||
                          text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool literal(std::string_view lit) {
        if (text.substr(pos, lit.size()) != lit)
            return false;
        pos += lit.size();
        return true;
    }

    bool string() {
        if (eof() || peek() != '"')
            return false;
        ++pos;
        while (!eof()) {
            const unsigned char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++pos;
                if (eof())
                    return false;
                const char e = text[pos];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + i >= text.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text[pos + i])))
                            return false;
                    }
                    pos += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++pos;
        }
        return false; // unterminated
    }

    bool digits() {
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
            ++pos;
        return true;
    }

    bool number() {
        if (!eof() && peek() == '-')
            ++pos;
        if (eof())
            return false;
        if (peek() == '0') {
            ++pos; // no leading zeros
        } else if (!digits()) {
            return false;
        }
        if (!eof() && peek() == '.') {
            ++pos;
            if (!digits())
                return false;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos;
            if (!digits())
                return false;
        }
        return true;
    }

    bool value() {
        if (++depth > kMaxDepth)
            return false;
        skip_ws();
        if (eof())
            return false;
        bool ok;
        switch (peek()) {
          case '{': ok = object(); break;
          case '[': ok = array(); break;
          case '"': ok = string(); break;
          case 't': ok = literal("true"); break;
          case 'f': ok = literal("false"); break;
          case 'n': ok = literal("null"); break;
          default: ok = number(); break;
        }
        --depth;
        return ok;
    }

    bool object() {
        ++pos; // '{'
        skip_ws();
        if (!eof() && peek() == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!string())
                return false;
            skip_ws();
            if (eof() || peek() != ':')
                return false;
            ++pos;
            if (!value())
                return false;
            skip_ws();
            if (eof())
                return false;
            if (peek() == '}') {
                ++pos;
                return true;
            }
            if (peek() != ',')
                return false;
            ++pos;
        }
    }

    bool array() {
        ++pos; // '['
        skip_ws();
        if (!eof() && peek() == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skip_ws();
            if (eof())
                return false;
            if (peek() == ']') {
                ++pos;
                return true;
            }
            if (peek() != ',')
                return false;
            ++pos;
        }
    }
};

} // namespace

bool
json_parse_ok(std::string_view text)
{
    Parser p{text};
    if (!p.value())
        return false;
    p.skip_ws();
    return p.eof();
}

void
write_lane_stats(JsonWriter &w, const LaneStats &s)
{
    w.begin_object();
    w.field("cycles", std::uint64_t{s.cycles});
    w.field("dispatches", s.dispatches);
    w.field("sig_misses", s.sig_misses);
    w.field("actions", s.actions);
    w.field("mem_reads", s.mem_reads);
    w.field("mem_writes", s.mem_writes);
    w.field("dispatch_reads", s.dispatch_reads);
    w.field("stall_cycles", s.stall_cycles);
    w.field("stream_bits", s.stream_bits);
    w.field("output_bytes", s.output_bytes);
    w.field("accepts", s.accepts);
    w.field("input_bytes", s.input_bytes());
    w.field("rate_mbps", s.rate_mbps());
    w.end_object();
}

} // namespace udp
