/**
 * @file
 * Vector register file implementation.
 */
#include "vector_regfile.hpp"

#include <algorithm>

namespace udp {

void
VectorRegFile::load(unsigned first, BytesView data)
{
    const std::size_t capacity =
        (kNumVectorRegs - std::size_t{first}) * kVectorRegBytes;
    if (first >= kNumVectorRegs || data.size() > capacity)
        throw UdpError("VectorRegFile: load does not fit");
    std::size_t off = 0;
    unsigned idx = first;
    while (off < data.size()) {
        const std::size_t n =
            std::min(kVectorRegBytes, data.size() - off);
        std::copy_n(data.begin() + off, n, regs_[idx].begin());
        off += n;
        ++idx;
    }
}

Bytes
VectorRegFile::stream_image(unsigned first, unsigned count) const
{
    if (first + count > kNumVectorRegs)
        throw UdpError("VectorRegFile: range out of bounds");
    Bytes out;
    out.reserve(count * kVectorRegBytes);
    for (unsigned i = first; i < first + count; ++i)
        out.insert(out.end(), regs_[i].begin(), regs_[i].end());
    return out;
}

} // namespace udp
