/**
 * @file
 * Program validation and state directory indexing.
 */
#include "program.hpp"

namespace udp {

void
Program::index_states()
{
    by_base_.assign(dispatch.size(), -1);
    for (std::size_t i = 0; i < states.size(); ++i) {
        const auto base = states[i].base;
        if (base >= dispatch.size())
            throw UdpError("Program: state base outside dispatch image");
        if (by_base_[base] != -1)
            throw UdpError("Program: duplicate state base");
        by_base_[base] = static_cast<std::int32_t>(i);
    }
}

const StateMeta *
Program::find_state(std::size_t base) const
{
    if (base >= by_base_.size() || by_base_[base] < 0)
        return nullptr;
    return &states[static_cast<std::size_t>(by_base_[base])];
}

void
Program::validate() const
{
    if (states.empty())
        throw UdpError("Program: no states");
    if (dispatch.empty())
        throw UdpError("Program: empty dispatch image");
    if (actions.size() > (std::size_t{1} << 24))
        throw UdpError("Program: action image unreasonably large");
    if (initial_symbol_bits == 0 || initial_symbol_bits > 32)
        throw UdpError("Program: initial symbol size must be 1..32");

    bool entry_found = false;
    for (const auto &s : states) {
        if (s.base >= dispatch.size())
            throw UdpError("Program: state base outside dispatch image");
        if (s.aux_count > s.base)
            throw UdpError("Program: auxiliary chain underflows memory");
        if (std::size_t{s.base} + s.max_symbol >= dispatch.size())
            throw UdpError("Program: labeled table overflows image");
        if (s.base == entry)
            entry_found = true;

        // Auxiliary chain words must carry this state's signature and be
        // decodable transitions of auxiliary kinds.
        for (unsigned k = 1; k <= s.aux_count; ++k) {
            const Transition t = decode_transition(dispatch[s.base - k]);
            if (t.signature != state_signature(s.base))
                throw UdpError("Program: aux word signature mismatch");
            if (t.type == TransitionType::Labeled ||
                t.type == TransitionType::Refill) {
                throw UdpError("Program: labeled word in auxiliary chain");
            }
        }
    }
    if (!entry_found)
        throw UdpError("Program: entry base is not a state");
}

} // namespace udp
