/**
 * @file
 * Minimal dependency-free JSON support for machine-readable metrics.
 *
 * Two halves:
 *  - `JsonWriter`: a streaming writer over any std::ostream that manages
 *    commas, nesting and string escaping, so callers can emit structured
 *    metrics (bench `--json` files, Chrome traces) without string
 *    concatenation bugs;
 *  - `json_parse_ok`: a strict syntax validator used by tests to round-trip
 *    everything the writer produces (and by tooling to sanity-check files)
 *    without pulling in an external JSON library.
 *
 * The writer emits numbers with enough precision to round-trip doubles and
 * maps non-finite values to `null` (JSON has no NaN/Inf).
 */
#pragma once

#include "stats.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace udp {

/**
 * Streaming JSON writer with automatic comma/indent management.
 *
 * Usage:
 *     JsonWriter w(os);
 *     w.begin_object();
 *     w.key("name").value("csv");
 *     w.key("rates").begin_array().value(1.5).value(2.5).end_array();
 *     w.end_object();
 *
 * Misuse (a value where a key is required, unbalanced end_*) throws
 * UdpError rather than emitting malformed output.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /// Emit an object key; must be followed by exactly one value.
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v) {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &value(bool v);
    JsonWriter &null();

    /// Shorthand for key(k).value(v).
    template <typename T> JsonWriter &field(std::string_view k, T v) {
        key(k);
        return value(v);
    }

    /// True once the single top-level value is complete.
    bool done() const { return done_; }

  private:
    enum class Ctx : std::uint8_t { Object, Array };
    void before_value(bool is_key);
    void newline_indent();

    std::ostream &os_;
    bool pretty_;
    bool done_ = false;
    bool key_pending_ = false; ///< key emitted, value required next
    std::vector<Ctx> stack_;
    std::vector<bool> has_items_; ///< per nesting level: needs a comma
};

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
std::string json_escape(std::string_view s);

/// Strict validation: true iff `text` is exactly one well-formed JSON
/// value (with surrounding whitespace allowed).
bool json_parse_ok(std::string_view text);

/// Emit a LaneStats as a JSON object (all counters, plus derived
/// input_bytes/rate_mbps), under the writer's current position.
void write_lane_stats(JsonWriter &w, const LaneStats &s);

} // namespace udp
