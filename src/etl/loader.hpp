/**
 * @file
 * The Figure 1 ETL-load study: decompress -> parse -> tokenize ->
 * deserialize a compressed CSV into the mini columnar store, with an
 * SSD I/O model, per-stage timing, and an optional UDP offload of the
 * accelerable stages.
 *
 * Substitutions vs the paper (DESIGN.md §4): PostgreSQL -> mini columnar
 * store; gzip -> Snappy (same decompress-parse-deserialize pipeline
 * structure); TPC-H dbgen -> a lineitem-like generator; absolute times
 * therefore shift, but the paper's point - CPU transformation dwarfs
 * I/O, and decompression+parsing dominate - is what the harness checks.
 */
#pragma once

#include "columnar.hpp"
#include "core/machine.hpp"

#include <chrono>

namespace udp::etl {

/// A TPC-H-like lineitem table (16 columns).  `scale` mirrors the TPC-H
/// scale factor, downscaled: rows = scale * kRowsPerScale.
inline constexpr std::size_t kRowsPerScale = 6000; // 1/1000 of TPC-H

/// Generate the CSV text of lineitem at `scale` (deterministic).
std::string lineitem_csv(double scale, unsigned seed = 20);

/// The lineitem schema for the mini store.
std::vector<std::pair<std::string, ColType>> lineitem_schema();

/// Per-stage wall-clock breakdown, in seconds.
struct LoadBreakdown {
    double io = 0;          ///< modeled SSD read time
    double decompress = 0;
    double parse = 0;       ///< CSV parse + tokenize
    double deserialize = 0; ///< typed conversion + dictionary + insert
    std::size_t csv_bytes = 0;
    std::size_t compressed_bytes = 0;
    std::size_t rows = 0;

    double cpu_seconds() const {
        return decompress + parse + deserialize;
    }
    double total_seconds() const { return io + cpu_seconds(); }
};

/// SSD read bandwidth of the I/O model (250 GB-class SATA SSD, Fig 1).
inline constexpr double kSsdBytesPerSec = 500.0e6;

/**
 * CPU-only load (Fig 1a/1b): Snappy-decompress `compressed`, parse the
 * CSV, deserialize into `table`.  Stage times are measured wall-clock;
 * `io` is modeled from the compressed size.
 */
LoadBreakdown load_cpu(BytesView compressed, Table &table);

/**
 * UDP-offloaded load: decompression and parse/tokenize run on simulated
 * UDP lanes (cycles at 1 GHz), deserialize stays on the CPU.  Returns
 * the same breakdown with offloaded stage times replaced by simulated
 * accelerator time.
 */
LoadBreakdown load_udp_offload(Machine &m, BytesView compressed,
                               Table &table, unsigned lanes = 32);

/// Compress a CSV text for the loaders (Snappy, 16 KiB blocks so each
/// block fits a UDP lane window).
Bytes compress_for_load(const std::string &csv);

} // namespace udp::etl
