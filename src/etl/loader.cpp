/**
 * @file
 * ETL loader implementation (Figure 1 harness).
 */
#include "loader.hpp"

#include "baselines/csv.hpp"
#include "baselines/snappy.hpp"
#include "kernels/csv.hpp"
#include "kernels/snappy.hpp"
#include "runtime/scheduler.hpp"

#include <algorithm>
#include <random>

namespace udp::etl {

namespace {

using Clock = std::chrono::steady_clock;

double
secs_since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

void
put_u32(Bytes &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
get_u32(BytesView in, std::size_t at)
{
    return Word{in[at]} | (Word{in[at + 1]} << 8) |
           (Word{in[at + 2]} << 16) | (Word{in[at + 3]} << 24);
}

/// Frame size chosen so a decompressed frame fits a UDP lane bank.
constexpr std::size_t kFrameRaw = 12 * 1024;

const char *const kShipModes[] = {"AIR",  "RAIL", "SHIP", "TRUCK",
                                  "MAIL", "FOB",  "REG AIR"};
const char *const kInstruct[] = {"DELIVER IN PERSON", "COLLECT COD",
                                 "TAKE BACK RETURN", "NONE"};

} // namespace

std::string
lineitem_csv(double scale, unsigned seed)
{
    const auto rows =
        static_cast<std::size_t>(scale * double(kRowsPerScale));
    std::mt19937 rng(seed);
    std::string out;
    out.reserve(rows * 120);
    char buf[32];
    for (std::size_t r = 0; r < rows; ++r) {
        out += std::to_string(1 + r / 4);            // orderkey
        out += ',';
        out += std::to_string(1 + rng() % 200000);   // partkey
        out += ',';
        out += std::to_string(1 + rng() % 10000);    // suppkey
        out += ',';
        out += std::to_string(1 + r % 4);            // linenumber
        out += ',';
        out += std::to_string(1 + rng() % 50);       // quantity
        out += ',';
        std::snprintf(buf, sizeof(buf), "%.2f",
                      900.0 + double(rng() % 9500000) / 100.0);
        out += buf;                                  // extendedprice
        out += ',';
        std::snprintf(buf, sizeof(buf), "0.0%u", unsigned(rng() % 10));
        out += buf;                                  // discount
        out += ',';
        std::snprintf(buf, sizeof(buf), "0.0%u", unsigned(rng() % 9));
        out += buf;                                  // tax
        out += ',';
        out += (rng() % 2) ? "N" : ((rng() % 2) ? "R" : "A");
        out += ',';
        out += (rng() % 2) ? "O" : "F";
        out += ',';
        std::snprintf(buf, sizeof(buf), "19%02u-%02u-%02u",
                      unsigned(92 + rng() % 7), unsigned(1 + rng() % 12),
                      unsigned(1 + rng() % 28));
        out += buf;                                  // shipdate
        out += ',';
        std::snprintf(buf, sizeof(buf), "19%02u-%02u-%02u",
                      unsigned(92 + rng() % 7), unsigned(1 + rng() % 12),
                      unsigned(1 + rng() % 28));
        out += buf;                                  // commitdate
        out += ',';
        std::snprintf(buf, sizeof(buf), "19%02u-%02u-%02u",
                      unsigned(92 + rng() % 7), unsigned(1 + rng() % 12),
                      unsigned(1 + rng() % 28));
        out += buf;                                  // receiptdate
        out += ',';
        out += kInstruct[rng() % std::size(kInstruct)];
        out += ',';
        out += kShipModes[rng() % std::size(kShipModes)];
        out += ",carefully packed deliveries nag furiously\n"; // comment
    }
    return out;
}

std::vector<std::pair<std::string, ColType>>
lineitem_schema()
{
    return {
        {"l_orderkey", ColType::Int64},
        {"l_partkey", ColType::Int64},
        {"l_suppkey", ColType::Int64},
        {"l_linenumber", ColType::Int64},
        {"l_quantity", ColType::Int64},
        {"l_extendedprice", ColType::Double},
        {"l_discount", ColType::Double},
        {"l_tax", ColType::Double},
        {"l_returnflag", ColType::Text},
        {"l_linestatus", ColType::Text},
        {"l_shipdate", ColType::Date},
        {"l_commitdate", ColType::Date},
        {"l_receiptdate", ColType::Date},
        {"l_shipinstruct", ColType::Text},
        {"l_shipmode", ColType::Text},
        {"l_comment", ColType::Text},
    };
}

Bytes
compress_for_load(const std::string &csv)
{
    Bytes out;
    std::size_t off = 0;
    while (off < csv.size()) {
        const std::size_t n = std::min(kFrameRaw, csv.size() - off);
        const BytesView chunk(
            reinterpret_cast<const std::uint8_t *>(csv.data()) + off, n);
        const Bytes comp = baselines::snappy_compress(chunk);
        put_u32(out, static_cast<std::uint32_t>(comp.size()));
        put_u32(out, static_cast<std::uint32_t>(n));
        out.insert(out.end(), comp.begin(), comp.end());
        off += n;
    }
    return out;
}

namespace {

/// Iterate frames of the compressed stream.
template <typename Fn>
void
for_frames(BytesView compressed, Fn &&fn)
{
    std::size_t pos = 0;
    while (pos < compressed.size()) {
        const std::uint32_t clen = get_u32(compressed, pos);
        const std::uint32_t rlen = get_u32(compressed, pos + 4);
        pos += 8;
        fn(compressed.subspan(pos, clen), rlen);
        pos += clen;
    }
}

/// Parse the CSV text and deserialize into the table, measuring the two
/// stages separately.
void
parse_and_deserialize(const std::string &csv, Table &table,
                      LoadBreakdown &bd)
{
    const auto t0 = Clock::now();
    std::vector<std::vector<std::string>> rows;
    {
        std::vector<std::string> cur;
        baselines::CsvParser p(
            [&](const char *d, std::size_t n) { cur.emplace_back(d, n); },
            [&] {
                rows.push_back(std::move(cur));
                cur.clear();
            });
        p.feed(BytesView(
            reinterpret_cast<const std::uint8_t *>(csv.data()),
            csv.size()));
        p.finish();
    }
    bd.parse = secs_since(t0);

    const auto t1 = Clock::now();
    for (const auto &r : rows)
        table.append_raw(r);
    bd.deserialize = secs_since(t1);
    bd.rows = table.num_rows();
}

} // namespace

LoadBreakdown
load_cpu(BytesView compressed, Table &table)
{
    LoadBreakdown bd;
    bd.compressed_bytes = compressed.size();
    bd.io = double(compressed.size()) / kSsdBytesPerSec;

    const auto t0 = Clock::now();
    std::string csv;
    for_frames(compressed, [&](BytesView frame, std::uint32_t) {
        const Bytes raw = baselines::snappy_decompress(frame);
        csv.append(reinterpret_cast<const char *>(raw.data()),
                   raw.size());
    });
    bd.decompress = secs_since(t0);
    bd.csv_bytes = csv.size();

    parse_and_deserialize(csv, table, bd);
    return bd;
}

LoadBreakdown
load_udp_offload(Machine &m, BytesView compressed, Table &table,
                 unsigned lanes)
{
    if (lanes == 0 || lanes > 32)
        throw UdpError("load_udp_offload: lanes must be 1..32");
    LoadBreakdown bd;
    bd.compressed_bytes = compressed.size();
    bd.io = double(compressed.size()) / kSsdBytesPerSec;

    runtime::SchedulerOptions opts;
    opts.max_jobs_per_wave = lanes;
    runtime::Scheduler sched(m, opts);

    // --- Stage 1: Snappy decompression on UDP lanes ---------------------
    // One job per compressed frame; the scheduler waves them over the
    // deployed lanes and charges the wave-summed machine time.
    const runtime::KernelSpec dec_spec = kernels::snappy_decompress_spec();
    // One arena over the whole compressed stream; every frame job is a
    // slice of it (the caller's buffer outlives the scheduled run).
    const runtime::ArenaSlice comp_arena =
        runtime::ArenaSlice::borrow(compressed);
    std::vector<runtime::JobPlan> dec_jobs;
    for_frames(compressed, [&](BytesView frame, std::uint32_t) {
        // Strip the varint preamble.
        std::size_t p = 0;
        while (frame[p] & 0x80)
            ++p;
        ++p;
        const std::size_t off =
            static_cast<std::size_t>(frame.data() - compressed.data()) + p;
        dec_jobs.push_back(
            dec_spec.make_job(comp_arena.subslice(off, frame.size() - p)));
    });
    const runtime::ScheduleReport dec_rep = sched.run(dec_jobs);
    std::string csv;
    for (const runtime::JobResult &r : dec_rep.jobs) {
        const auto res = kernels::decode_snappy_decompress_result(r);
        csv.append(reinterpret_cast<const char *>(res.data.data()),
                   res.data.size());
    }
    bd.decompress = double(dec_rep.wall_cycles) / kClockHz;
    bd.csv_bytes = csv.size();

    // --- Stage 2: CSV parse + tokenize on UDP lanes ----------------------
    // Chunk on row boundaries so every lane parses whole rows.
    // `csv` stays alive across the scheduled run, so the chunk jobs
    // borrow it through one arena — no per-chunk copies.
    const std::vector<runtime::JobPlan> csv_jobs = runtime::chunk_jobs(
        kernels::csv_kernel_spec(),
        runtime::ArenaSlice::borrow(BytesView(
            reinterpret_cast<const std::uint8_t *>(csv.data()),
            csv.size())),
        kFrameRaw, runtime::align_after_delim('\n'));
    const runtime::ScheduleReport csv_rep = sched.run(csv_jobs);
    std::string fields;
    for (const runtime::JobResult &r : csv_rep.jobs) {
        const auto res = kernels::decode_csv_result(r);
        fields.append(res.field_stream.begin(), res.field_stream.end());
    }
    bd.parse = double(csv_rep.wall_cycles) / kClockHz;

    // --- Stage 3: deserialize on the CPU from the field stream -----------
    const auto t0 = Clock::now();
    std::vector<std::string> cur;
    std::string field;
    for (const char c : fields) {
        if (c == '\n') {
            cur.push_back(std::move(field));
            field.clear();
        } else if (c == 0x1E) {
            table.append_raw(cur);
            cur.clear();
        } else {
            field.push_back(c);
        }
    }
    bd.deserialize = secs_since(t0);
    bd.rows = table.num_rows();
    return bd;
}

} // namespace udp::etl
