/**
 * @file
 * A miniature columnar store: the load target of the Figure 1 ETL study
 * (standing in for PostgreSQL's heap + the columnar formats of Section
 * 2.1).  Typed columns with dictionary encoding for strings; the loader
 * deserializes CSV fields into these columns.
 */
#pragma once

#include "baselines/dictionary.hpp"
#include "core/types.hpp"

#include <string>
#include <variant>
#include <vector>

namespace udp::etl {

/// Column types of the mini store.
enum class ColType { Int64, Double, Date, Text };

/// Days since 1970-01-01 (date deserialization target).
using DateDays = std::int32_t;

/// One typed column.
struct Column {
    std::string name;
    ColType type = ColType::Text;
    std::vector<std::int64_t> ints;      ///< Int64 / Date storage
    std::vector<double> doubles;
    baselines::Dictionary dict;          ///< Text: dictionary
    std::vector<std::uint32_t> codes;    ///< Text: dictionary codes

    std::size_t size() const;
    /// Approximate in-memory bytes (for stats / Fig 1 accounting).
    std::size_t bytes() const;
};

/// A loaded table.
class Table
{
  public:
    Table(std::string name, std::vector<std::pair<std::string, ColType>>
                                schema);

    const std::string &name() const { return name_; }
    std::size_t num_rows() const { return rows_; }
    std::size_t num_cols() const { return cols_.size(); }
    const Column &col(std::size_t i) const { return cols_.at(i); }

    /// Append one row of already-deserialized values.
    using Value = std::variant<std::int64_t, double, std::string>;
    void append_row(const std::vector<Value> &values);

    /// Deserialize and append one row of raw CSV fields.
    /// Throws UdpError on a malformed field (the "validation" step).
    void append_raw(const std::vector<std::string> &fields);

    std::size_t bytes() const;

  private:
    std::string name_;
    std::vector<Column> cols_;
    std::size_t rows_ = 0;
};

/// Deserialization helpers (exposed for tests and the loader).
std::int64_t parse_int64(const std::string &s);
double parse_double(const std::string &s);
/// "MM/DD/YYYY[ ...]" or "YYYY-MM-DD" to days since epoch.
DateDays parse_date(const std::string &s);

} // namespace udp::etl
