/**
 * @file
 * Mini columnar store implementation.
 */
#include "columnar.hpp"

#include <charconv>
#include <cmath>

namespace udp::etl {

std::size_t
Column::size() const
{
    switch (type) {
      case ColType::Int64:
      case ColType::Date: return ints.size();
      case ColType::Double: return doubles.size();
      case ColType::Text: return codes.size();
    }
    return 0;
}

std::size_t
Column::bytes() const
{
    std::size_t b = ints.size() * 8 + doubles.size() * 8 +
                    codes.size() * 4;
    for (const auto &v : dict.values)
        b += v.size() + 8;
    return b;
}

Table::Table(std::string name,
             std::vector<std::pair<std::string, ColType>> schema)
    : name_(std::move(name))
{
    for (auto &[n, t] : schema) {
        Column c;
        c.name = std::move(n);
        c.type = t;
        cols_.push_back(std::move(c));
    }
    if (cols_.empty())
        throw UdpError("Table: empty schema");
}

void
Table::append_row(const std::vector<Value> &values)
{
    if (values.size() != cols_.size())
        throw UdpError("Table: row arity mismatch");
    for (std::size_t i = 0; i < cols_.size(); ++i) {
        Column &c = cols_[i];
        switch (c.type) {
          case ColType::Int64:
          case ColType::Date:
            c.ints.push_back(std::get<std::int64_t>(values[i]));
            break;
          case ColType::Double:
            c.doubles.push_back(std::get<double>(values[i]));
            break;
          case ColType::Text:
            c.codes.push_back(
                c.dict.intern(std::get<std::string>(values[i])));
            break;
        }
    }
    ++rows_;
}

void
Table::append_raw(const std::vector<std::string> &fields)
{
    if (fields.size() != cols_.size())
        throw UdpError("Table: CSV arity mismatch for " + name_);
    for (std::size_t i = 0; i < cols_.size(); ++i) {
        Column &c = cols_[i];
        switch (c.type) {
          case ColType::Int64:
            c.ints.push_back(parse_int64(fields[i]));
            break;
          case ColType::Date:
            c.ints.push_back(parse_date(fields[i]));
            break;
          case ColType::Double:
            c.doubles.push_back(parse_double(fields[i]));
            break;
          case ColType::Text:
            c.codes.push_back(c.dict.intern(fields[i]));
            break;
        }
    }
    ++rows_;
}

std::size_t
Table::bytes() const
{
    std::size_t b = 0;
    for (const auto &c : cols_)
        b += c.bytes();
    return b;
}

std::int64_t
parse_int64(const std::string &s)
{
    std::int64_t v = 0;
    const auto *b = s.data();
    const auto *e = s.data() + s.size();
    const auto [p, ec] = std::from_chars(b, e, v);
    if (ec != std::errc{} || p != e)
        throw UdpError("parse_int64: bad integer '" + s + "'");
    return v;
}

double
parse_double(const std::string &s)
{
    double v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || p != s.data() + s.size())
        throw UdpError("parse_double: bad number '" + s + "'");
    return v;
}

namespace {

bool
is_leap(int y)
{
    return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

DateDays
days_from_civil(int y, int m, int d)
{
    // Howard Hinnant's algorithm.
    y -= m <= 2;
    const int era = (y >= 0 ? y : y - 399) / 400;
    const unsigned yoe = static_cast<unsigned>(y - era * 400);
    const unsigned doy =
        (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
        static_cast<unsigned>(d) - 1;
    const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return static_cast<DateDays>(era * 146097 +
                                 static_cast<int>(doe) - 719468);
}

int
two_digits(const std::string &s, std::size_t at)
{
    if (at + 2 > s.size() || !isdigit((unsigned char)s[at]) ||
        !isdigit((unsigned char)s[at + 1]))
        throw UdpError("parse_date: bad digits in '" + s + "'");
    return (s[at] - '0') * 10 + (s[at + 1] - '0');
}

} // namespace

DateDays
parse_date(const std::string &s)
{
    // "MM/DD/YYYY[ hh:mm:ss]" (Crimes-style) or "YYYY-MM-DD".
    if (s.size() >= 10 && s[2] == '/' && s[5] == '/') {
        const int m = two_digits(s, 0);
        const int d = two_digits(s, 3);
        const int y = two_digits(s, 6) * 100 + two_digits(s, 8);
        if (m < 1 || m > 12 || d < 1 ||
            d > (m == 2 ? (is_leap(y) ? 29 : 28)
                        : (m == 4 || m == 6 || m == 9 || m == 11 ? 30
                                                                 : 31)))
            throw UdpError("parse_date: out-of-range '" + s + "'");
        return days_from_civil(y, m, d);
    }
    if (s.size() >= 10 && s[4] == '-' && s[7] == '-') {
        const int y = two_digits(s, 0) * 100 + two_digits(s, 2);
        const int m = two_digits(s, 5);
        const int d = two_digits(s, 8);
        if (m < 1 || m > 12 || d < 1 || d > 31)
            throw UdpError("parse_date: out-of-range '" + s + "'");
        return days_from_civil(y, m, d);
    }
    throw UdpError("parse_date: unrecognized format '" + s + "'");
}

} // namespace udp::etl
