/**
 * @file
 * Deterministic synthetic workload generators.
 *
 * The paper evaluates on datasets we cannot redistribute or fetch
 * (Chicago Crimes/Food-Inspection CSV, NYC Taxi trips, Canterbury Corpus,
 * Berkeley Big Data blocks, IBM PowerEN NIDS patterns, a proprietary
 * Keysight oscilloscope trace).  Each generator below produces a
 * schema/shape-faithful synthetic equivalent that exercises the same code
 * paths (delimiter/quote density, entropy mix, match structure, pulse
 * shapes); DESIGN.md §4 documents each substitution.
 *
 * All generators are deterministic in their seed.
 */
#pragma once

#include "core/types.hpp"

#include <string>
#include <vector>

namespace udp::workloads {

// --- CSV datasets (Fig 13, Fig 17, Fig 18 inputs) -------------------------

/// Chicago-Crimes-like CSV: 22 columns, dates, booleans, enum strings,
/// coordinates; no quoted fields (the common fast path).
std::string crimes_csv(std::size_t rows, unsigned seed = 1);

/// NYC-Taxi-trip-like CSV: 14 numeric/datetime columns.
std::string taxi_csv(std::size_t rows, unsigned seed = 2);

/// Food-Inspection-like CSV: quoted fields with embedded commas, escaped
/// quotes ("") and long free-text comments (the hard path).
std::string food_inspection_csv(std::size_t rows, unsigned seed = 3);

// --- Text corpora (Huffman and Snappy inputs, Figs 14/15/19/20) ----------

/// Entropy-controlled text.  `entropy` in [0,1]: 0 = highly repetitive
/// (compresses extremely well), ~0.5 = English-like Markov text,
/// 1 = uniform random bytes (incompressible).
Bytes text_corpus(std::size_t size, double entropy, unsigned seed = 4);

/// A named file suite standing in for Canterbury + BDBench blocks.
struct CorpusFile {
    std::string name;
    Bytes data;
};
std::vector<CorpusFile> corpus_suite(std::size_t scale_bytes = 64 * 1024);

// --- Pattern matching (Fig 16 inputs) -------------------------------------

/// Snort-like NIDS pattern strings.  `complex=false` yields literal
/// signatures ("string matching"); true yields regexes with classes,
/// repetition and alternation ("complex regular expressions").
std::vector<std::string> nids_patterns(std::size_t count, bool complex,
                                       unsigned seed = 5);

/// Network-payload-like byte stream with occasional pattern plants.
Bytes packet_payloads(std::size_t size,
                      const std::vector<std::string> &patterns,
                      double plant_rate = 0.001, unsigned seed = 6);

// --- Dictionary / RLE attributes (Fig 17 inputs) ---------------------------

/// Low-cardinality attribute column, Zipf-distributed (Crimes.Arrest /
/// District / LocationDescription-like). Values newline-separated.
std::vector<std::string> zipf_attribute(std::size_t rows,
                                        std::size_t cardinality,
                                        double skew = 1.2,
                                        unsigned seed = 7);

/// Same with runs (sorted-by-column behavior), for dictionary-RLE.
std::vector<std::string> runny_attribute(std::size_t rows,
                                         std::size_t cardinality,
                                         double mean_run = 6.0,
                                         unsigned seed = 8);

// --- Histogram values (Fig 18 inputs) --------------------------------------

/// IEEE-754 doubles: latitude-like normal, longitude-like normal, or
/// fare-like log-normal, per `kind` = 0/1/2.
std::vector<double> fp_values(std::size_t count, unsigned kind,
                              unsigned seed = 9);

// --- Signal triggering (Section 5.7 input) ---------------------------------

/// Binarized pulsed waveform (1 bit per sample, packed MSB-first):
/// pulses of width 1..max_width samples with idle gaps, plus jitter.
Bytes waveform(std::size_t samples, unsigned max_width = 16,
               unsigned seed = 10);

} // namespace udp::workloads
