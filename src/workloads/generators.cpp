/**
 * @file
 * Synthetic workload generator implementations.
 */
#include "generators.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace udp::workloads {

namespace {

const char *const kStreets[] = {
    "STATE ST", "MICHIGAN AVE", "WESTERN AVE", "HALSTED ST", "ASHLAND AVE",
    "PULASKI RD", "CICERO AVE", "KEDZIE AVE", "DAMEN AVE", "CLARK ST",
};

const char *const kCrimeTypes[] = {
    "THEFT", "BATTERY", "CRIMINAL DAMAGE", "NARCOTICS", "ASSAULT",
    "BURGLARY", "MOTOR VEHICLE THEFT", "ROBBERY", "DECEPTIVE PRACTICE",
};

const char *const kLocationDesc[] = {
    "STREET", "RESIDENCE", "APARTMENT", "SIDEWALK", "PARKING LOT",
    "ALLEY", "SCHOOL", "RESTAURANT", "SMALL RETAIL STORE", "GAS STATION",
};

const char *const kWords[] = {
    "the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
    "data", "with", "as", "was", "on", "are", "by", "this", "be", "at",
    "stream", "value", "record", "system", "process", "table", "block",
    "analysis", "result", "memory", "transform", "encode", "parse",
};

std::string
fixed_num(std::mt19937 &rng, unsigned digits)
{
    std::string s;
    for (unsigned i = 0; i < digits; ++i)
        s.push_back(static_cast<char>('0' + rng() % 10));
    return s;
}

std::string
date_str(std::mt19937 &rng)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%02u/%02u/20%02u %02u:%02u:%02u",
                  unsigned(1 + rng() % 12), unsigned(1 + rng() % 28),
                  unsigned(10 + rng() % 8), unsigned(rng() % 24),
                  unsigned(rng() % 60), unsigned(rng() % 60));
    return buf;
}

std::string
coord(std::mt19937 &rng, double base, double spread)
{
    std::uniform_real_distribution<double> d(base - spread, base + spread);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9f", d(rng));
    return buf;
}

} // namespace

std::string
crimes_csv(std::size_t rows, unsigned seed)
{
    std::mt19937 rng(seed);
    std::string out;
    out += "ID,Case Number,Date,Block,IUCR,Primary Type,Description,"
           "Location Description,Arrest,Domestic,Beat,District,Ward,"
           "Community Area,FBI Code,X Coordinate,Y Coordinate,Year,"
           "Updated On,Latitude,Longitude,Location\n";
    for (std::size_t r = 0; r < rows; ++r) {
        out += fixed_num(rng, 8);
        out += ",HZ";
        out += fixed_num(rng, 6);
        out += ',';
        out += date_str(rng);
        out += ",0";
        out += fixed_num(rng, 2);
        out += "XX ";
        out += kStreets[rng() % std::size(kStreets)];
        out += ',';
        out += fixed_num(rng, 4);
        out += ',';
        out += kCrimeTypes[rng() % std::size(kCrimeTypes)];
        out += ",SIMPLE,";
        out += kLocationDesc[rng() % std::size(kLocationDesc)];
        out += (rng() % 4 == 0) ? ",true," : ",false,";
        out += (rng() % 6 == 0) ? "true," : "false,";
        out += fixed_num(rng, 4);
        out += ',';
        out += std::to_string(1 + rng() % 25);
        out += ',';
        out += std::to_string(1 + rng() % 50);
        out += ',';
        out += std::to_string(1 + rng() % 77);
        out += ",06,";
        out += fixed_num(rng, 7);
        out += ',';
        out += fixed_num(rng, 7);
        out += ",201";
        out.push_back(static_cast<char>('0' + rng() % 8));
        out += ',';
        out += date_str(rng);
        out += ',';
        out += coord(rng, 41.8, 0.3);
        out += ',';
        out += coord(rng, -87.6, 0.4);
        out += ',';
        out += "POINT";
        out += '\n';
    }
    return out;
}

std::string
taxi_csv(std::size_t rows, unsigned seed)
{
    std::mt19937 rng(seed);
    std::string out;
    out += "medallion,hack_license,vendor_id,rate_code,pickup_datetime,"
           "dropoff_datetime,passenger_count,trip_time_in_secs,"
           "trip_distance,pickup_longitude,pickup_latitude,"
           "dropoff_longitude,dropoff_latitude,fare_amount\n";
    for (std::size_t r = 0; r < rows; ++r) {
        out += fixed_num(rng, 32);
        out += ',';
        out += fixed_num(rng, 32);
        out += (rng() % 2) ? ",CMT," : ",VTS,";
        out += std::to_string(1 + rng() % 5);
        out += ',';
        out += date_str(rng);
        out += ',';
        out += date_str(rng);
        out += ',';
        out += std::to_string(1 + rng() % 6);
        out += ',';
        out += std::to_string(60 + rng() % 3600);
        out += ',';
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%.2f",
                      0.3 + (rng() % 3000) / 100.0);
        out += buf;
        out += ',';
        out += coord(rng, -73.98, 0.1);
        out += ',';
        out += coord(rng, 40.75, 0.1);
        out += ',';
        out += coord(rng, -73.98, 0.1);
        out += ',';
        out += coord(rng, 40.75, 0.1);
        out += ',';
        std::snprintf(buf, sizeof(buf), "%.2f",
                      2.5 + (rng() % 10000) / 100.0);
        out += buf;
        out += '\n';
    }
    return out;
}

std::string
food_inspection_csv(std::size_t rows, unsigned seed)
{
    std::mt19937 rng(seed);
    std::string out;
    out += "Inspection ID,DBA Name,AKA Name,License,Facility Type,Risk,"
           "Address,City,State,Zip,Inspection Date,Inspection Type,"
           "Results,Violations,Latitude,Longitude,Location\n";
    for (std::size_t r = 0; r < rows; ++r) {
        out += fixed_num(rng, 7);
        // Quoted names with embedded commas and escaped ("") quotes.
        out += ",\"JOE\"\"S GRILL, INC.\",\"JOE\"\"S\",";
        out += fixed_num(rng, 7);
        out += ",Restaurant,Risk 1 (High),";
        out += fixed_num(rng, 4);
        out += " W ";
        out += kStreets[rng() % std::size(kStreets)];
        out += ",CHICAGO,IL,606";
        out += fixed_num(rng, 2);
        out += ',';
        out += date_str(rng);
        out += ",Canvass,";
        out += (rng() % 3 == 0) ? "Fail," : "Pass,";
        // Long quoted free-text comment with commas and escaped quotes.
        out += '"';
        const unsigned sentences = 2 + rng() % 6;
        for (unsigned s = 0; s < sentences; ++s) {
            out += std::to_string(30 + rng() % 40);
            out += ". OBSERVED \"\"";
            out += kLocationDesc[rng() % std::size(kLocationDesc)];
            out += "\"\" VIOLATION, COMMENTS: MUST CLEAN ";
            for (unsigned w = 0; w < 6 + rng() % 10; ++w) {
                out += kWords[rng() % std::size(kWords)];
                out += ' ';
            }
            out += "| ";
        }
        out += "\",";
        out += coord(rng, 41.8, 0.3);
        out += ',';
        out += coord(rng, -87.6, 0.4);
        out += ",\"(41.8, -87.6)\"";
        out += '\n';
    }
    return out;
}

Bytes
text_corpus(std::size_t size, double entropy, unsigned seed)
{
    std::mt19937 rng(seed);
    Bytes out;
    out.reserve(size);

    if (entropy >= 0.95) {
        for (std::size_t i = 0; i < size; ++i)
            out.push_back(static_cast<std::uint8_t>(rng()));
        return out;
    }
    if (entropy <= 0.05) {
        const std::string unit = "abababab ababab ";
        while (out.size() < size)
            out.insert(out.end(), unit.begin(), unit.end());
        out.resize(size);
        return out;
    }

    // English-like Markov word soup whose repetitiveness scales with
    // (1 - entropy): lower entropy reuses a smaller phrase pool.
    const std::size_t pool =
        std::max<std::size_t>(2, static_cast<std::size_t>(
                                     std::size(kWords) * entropy * 2));
    std::vector<std::string> phrases;
    const std::size_t nphrases =
        std::max<std::size_t>(4, static_cast<std::size_t>(64 * entropy));
    for (std::size_t p = 0; p < nphrases; ++p) {
        std::string phrase;
        const unsigned words = 3 + rng() % 8;
        for (unsigned w = 0; w < words; ++w) {
            phrase += kWords[rng() % std::min(pool, std::size(kWords))];
            phrase += ' ';
        }
        phrases.push_back(phrase);
    }
    while (out.size() < size) {
        const auto &p = phrases[rng() % phrases.size()];
        out.insert(out.end(), p.begin(), p.end());
        if (rng() % 12 == 0) {
            out.push_back('.');
            out.push_back('\n');
        }
    }
    out.resize(size);
    return out;
}

std::vector<CorpusFile>
corpus_suite(std::size_t scale_bytes)
{
    // Mirrors Canterbury's spread of entropies plus BDBench-like blocks.
    return {
        {"alice-like (english)", text_corpus(scale_bytes, 0.5, 41)},
        {"html-like (markup)", text_corpus(scale_bytes, 0.35, 42)},
        {"fields-like (repetitive)", text_corpus(scale_bytes, 0.05, 43)},
        {"random (incompressible)", text_corpus(scale_bytes, 1.0, 44)},
        {"crawl-like (web text)", text_corpus(scale_bytes * 2, 0.6, 45)},
        {"rank-like (numeric)", text_corpus(scale_bytes, 0.25, 46)},
        {"user-like (logs)", text_corpus(scale_bytes * 2, 0.45, 47)},
    };
}

std::vector<std::string>
nids_patterns(std::size_t count, bool complex, unsigned seed)
{
    std::mt19937 rng(seed);
    const char *const tokens[] = {
        "exec",   "cmd",   "root",  "admin", "passwd", "shell", "GET",
        "POST",   "HEAD",  "login", "eval",  "select", "union", "drop",
        "script", "alert", "flood", "probe", "xmas",   "scan",
    };
    std::vector<std::string> pats;
    for (std::size_t i = 0; i < count; ++i) {
        std::string p = tokens[rng() % std::size(tokens)];
        p += static_cast<char>('a' + rng() % 26);
        p += std::to_string(rng() % 100);
        if (complex) {
            switch (rng() % 4) {
              case 0: p += "[0-9]{1,3}"; break;
              case 1: p += "(bin|lib|etc)"; break;
              case 2: p += "[a-f]+x?"; break;
              case 3: p += ".{1,4}end"; break;
            }
        }
        pats.push_back(std::move(p));
    }
    return pats;
}

Bytes
packet_payloads(std::size_t size, const std::vector<std::string> &patterns,
                double plant_rate, unsigned seed)
{
    std::mt19937 rng(seed);
    Bytes out;
    out.reserve(size + 64);
    std::uniform_real_distribution<double> u(0, 1);
    while (out.size() < size) {
        if (!patterns.empty() && u(rng) < plant_rate) {
            // Plant a literal prefix of some pattern (pre-regex part).
            const std::string &p = patterns[rng() % patterns.size()];
            const std::size_t cut = p.find_first_of("[({.");
            const std::string lit =
                cut == std::string::npos ? p : p.substr(0, cut);
            out.insert(out.end(), lit.begin(), lit.end());
        }
        // Mixed printable/binary payload.
        const unsigned n = 16 + rng() % 48;
        for (unsigned i = 0; i < n; ++i) {
            const unsigned r = rng();
            out.push_back(static_cast<std::uint8_t>(
                (r % 4 == 0) ? r : (0x20 + r % 0x5F)));
        }
    }
    out.resize(size);
    return out;
}

std::vector<std::string>
zipf_attribute(std::size_t rows, std::size_t cardinality, double skew,
               unsigned seed)
{
    std::mt19937 rng(seed);
    // Zipf CDF over `cardinality` distinct values.
    std::vector<double> cdf(cardinality);
    double sum = 0;
    for (std::size_t k = 0; k < cardinality; ++k) {
        sum += 1.0 / std::pow(double(k + 1), skew);
        cdf[k] = sum;
    }
    std::uniform_real_distribution<double> u(0, sum);

    std::vector<std::string> values(cardinality);
    for (std::size_t k = 0; k < cardinality; ++k)
        values[k] = kLocationDesc[k % std::size(kLocationDesc)] +
                    std::string("-") + std::to_string(k);

    std::vector<std::string> out;
    out.reserve(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        const double x = u(rng);
        const std::size_t k =
            std::lower_bound(cdf.begin(), cdf.end(), x) - cdf.begin();
        out.push_back(values[std::min(k, cardinality - 1)]);
    }
    return out;
}

std::vector<std::string>
runny_attribute(std::size_t rows, std::size_t cardinality, double mean_run,
                unsigned seed)
{
    std::mt19937 rng(seed);
    std::vector<std::string> base =
        zipf_attribute(rows, cardinality, 1.2, seed + 100);
    std::vector<std::string> out;
    out.reserve(rows);
    std::geometric_distribution<unsigned> g(1.0 / mean_run);
    std::size_t i = 0;
    while (out.size() < rows) {
        const std::string &v = base[i++ % base.size()];
        const unsigned run = 1 + g(rng);
        for (unsigned k = 0; k < run && out.size() < rows; ++k)
            out.push_back(v);
    }
    return out;
}

std::vector<double>
fp_values(std::size_t count, unsigned kind, unsigned seed)
{
    std::mt19937 rng(seed);
    std::vector<double> out;
    out.reserve(count);
    if (kind == 0) { // latitude-like
        std::normal_distribution<double> d(41.85, 0.12);
        for (std::size_t i = 0; i < count; ++i)
            out.push_back(d(rng));
    } else if (kind == 1) { // longitude-like
        std::normal_distribution<double> d(-87.65, 0.15);
        for (std::size_t i = 0; i < count; ++i)
            out.push_back(d(rng));
    } else { // fare-like (log-normal, heavy tail)
        std::lognormal_distribution<double> d(2.3, 0.7);
        for (std::size_t i = 0; i < count; ++i)
            out.push_back(d(rng));
    }
    return out;
}

Bytes
waveform(std::size_t samples, unsigned max_width, unsigned seed)
{
    std::mt19937 rng(seed);
    Bytes out((samples + 7) / 8, 0);
    std::size_t pos = 0;
    auto set_bit = [&](std::size_t i) {
        out[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
    };
    while (pos < samples) {
        const unsigned gap = 2 + rng() % 24;
        pos += gap;
        const unsigned width = 1 + rng() % max_width;
        for (unsigned i = 0; i < width && pos < samples; ++i, ++pos)
            set_bit(pos);
    }
    return out;
}

} // namespace udp::workloads
