#include "service/service.hpp"

#include "core/metrics_json.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace udp::service {

namespace {

/// Escape a tenant name for use as a Prometheus label value
/// (backslash, double quote and newline, per the exposition format).
std::string
label_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

/// Registry name of one tenant-labeled series: `base{tenant="name"}`.
std::string
series(std::string_view base, std::string_view tenant)
{
    std::string s(base);
    s += "{tenant=\"";
    s += label_escape(tenant);
    s += "\"}";
    return s;
}

} // namespace

std::string_view
job_state_name(JobState s)
{
    switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Quarantined: return "quarantined";
    case JobState::Rejected: return "rejected";
    case JobState::Cancelled: return "cancelled";
    case JobState::Expired: return "expired";
    }
    return "?";
}

std::string_view
reject_reason_name(RejectReason r)
{
    switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::RateLimited: return "rate_limited";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::BreakerOpen: return "breaker_open";
    case RejectReason::ShuttingDown: return "shutting_down";
    case RejectReason::Timeout: return "timeout";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// Internal records.
// ---------------------------------------------------------------------------

/// One submitted job, shared between the submitting client, the jobs_
/// map and the run loop's batch vector.  Mutated only under mu_ (the
/// Scheduler communicates through control_/the report, never directly).
struct Service::JobRecord {
    JobId id = 0;
    TenantId tenant = 0;
    runtime::JobPlan plan;
    double submit_s = 0;
    double deadline_s = 0; ///< absolute (service clock); 0 = none
    JobState state = JobState::Queued;
    RejectReason reject = RejectReason::None;
    runtime::JobResult result;
    unsigned attempts = 0;
    double e2e_s = 0;
    bool degraded = false;
    bool cancel_requested = false;
    /// Deadline passed while Running: the cancel propagated into the
    /// Scheduler came from expiry, so the terminal state is Expired.
    bool expired_pending = false;
    std::size_t batch_index = 0; ///< valid while state == Running
};

/// Per-tenant state: contract, admission machinery, queue, accounting
/// and the resolved labeled metrics.  Lives behind a unique_ptr so
/// references stay stable as tenants register.
struct Service::Tenant {
    TenantOptions opt;
    TokenBucket bucket;
    CircuitBreaker breaker;
    std::deque<std::shared_ptr<JobRecord>> queue; ///< may hold tombstones
    std::size_t queued = 0;   ///< live (non-terminal) entries in queue
    std::size_t in_flight = 0;
    TenantStats st;
    std::deque<runtime::FaultReport> pms;

    runtime::Counter *c_submitted = nullptr;
    runtime::Counter *c_admitted = nullptr;
    runtime::Counter *c_degraded = nullptr;
    runtime::Counter *c_completed = nullptr;
    runtime::Counter *c_quarantined = nullptr;
    runtime::Counter *c_cancelled = nullptr;
    runtime::Counter *c_expired = nullptr;
    runtime::Counter *c_rej_rate = nullptr;
    runtime::Counter *c_rej_queue = nullptr;
    runtime::Counter *c_rej_breaker = nullptr;
    runtime::Counter *c_rej_shutdown = nullptr;
    runtime::Counter *c_rej_timeout = nullptr;
    runtime::Counter *c_trips = nullptr;
    runtime::Gauge *g_depth = nullptr;
    runtime::Histogram *h_e2e_us = nullptr;
};

// ---------------------------------------------------------------------------
// Construction / shutdown.
// ---------------------------------------------------------------------------

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)), epoch_(std::chrono::steady_clock::now())
{
    if (opts_.max_batch_jobs == 0)
        opts_.max_batch_jobs = 1;
    if (opts_.registry) {
        registry_ = opts_.registry;
    } else {
        owned_registry_ = std::make_unique<runtime::MetricRegistry>();
        registry_ = owned_registry_.get();
    }
    telemetry_ = std::make_unique<runtime::RegistryTelemetry>(*registry_);
    control_ = std::make_unique<runtime::JobControl>(opts_.max_batch_jobs);

    runtime::SchedulerOptions sopts = opts_.sched;
    sopts.telemetry = telemetry_.get();
    sopts.control = control_.get();
    if (opts_.keep_postmortems_per_tenant > 0) {
        // In-memory capture must out-survive one batch's worst case so
        // finalize_batch can route every new report to its tenant.
        const std::size_t per_batch =
            std::size_t{opts_.max_batch_jobs} *
            std::max(4u, sopts.retry.max_attempts);
        sopts.postmortem.keep_last =
            std::max(sopts.postmortem.keep_last, per_batch);
    }
    scheduler_ = std::make_unique<runtime::Scheduler>(sopts);

    loop_ = std::thread([this] { run_loop(); });
}

Service::~Service() { drain(); }

void
Service::drain()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    if (loop_.joinable())
        loop_.join();
}

double
Service::now_s() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

// ---------------------------------------------------------------------------
// Tenant registration.
// ---------------------------------------------------------------------------

TenantId
Service::register_tenant(const TenantOptions &opts)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto t = std::make_unique<Tenant>();
    t->opt = opts;
    if (t->opt.name.empty())
        t->opt.name = "tenant" + std::to_string(tenants_.size());
    if (t->opt.weight == 0)
        t->opt.weight = 1;
    if (t->opt.queue_capacity == 0)
        t->opt.queue_capacity = 1;
    t->bucket = TokenBucket(t->opt.rate_jobs_per_s, t->opt.burst, now_s());
    t->breaker = CircuitBreaker(t->opt.breaker);
    t->st.name = t->opt.name;

    const std::string &n = t->opt.name;
    auto &reg = *registry_;
    t->c_submitted = &reg.counter(series("service.jobs.submitted", n));
    t->c_admitted = &reg.counter(series("service.jobs.admitted", n));
    t->c_degraded = &reg.counter(series("service.jobs.degraded", n));
    t->c_completed = &reg.counter(series("service.jobs.completed", n));
    t->c_quarantined = &reg.counter(series("service.jobs.quarantined", n));
    t->c_cancelled = &reg.counter(series("service.jobs.cancelled", n));
    t->c_expired = &reg.counter(series("service.jobs.expired", n));
    t->c_rej_rate = &reg.counter(series("service.rejected.rate_limited", n));
    t->c_rej_queue = &reg.counter(series("service.rejected.queue_full", n));
    t->c_rej_breaker = &reg.counter(series("service.rejected.breaker", n));
    t->c_rej_shutdown = &reg.counter(series("service.rejected.shutdown", n));
    t->c_rej_timeout = &reg.counter(series("service.rejected.timeout", n));
    t->c_trips = &reg.counter(series("service.breaker.trips", n));
    t->g_depth = &reg.gauge(series("service.queue.depth", n));
    t->h_e2e_us = &reg.histogram(series("service.e2e_host_us", n));

    tenants_.push_back(std::move(t));
    return tenants_.size() - 1;
}

ServiceClient
Service::client(TenantId tenant)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (tenant >= tenants_.size())
        throw UdpError("Service::client: unknown tenant id");
    return ServiceClient(this, tenant);
}

// ---------------------------------------------------------------------------
// Submission / admission control.
// ---------------------------------------------------------------------------

void
Service::reject(JobRecord &rec, Tenant &t, RejectReason why)
{
    rec.state = JobState::Rejected;
    rec.reject = why;
    rec.e2e_s = now_s() - rec.submit_s;
    switch (why) {
    case RejectReason::RateLimited:
        ++t.st.rejected_rate_limited;
        t.c_rej_rate->add();
        break;
    case RejectReason::QueueFull:
        ++t.st.rejected_queue_full;
        t.c_rej_queue->add();
        break;
    case RejectReason::BreakerOpen:
        ++t.st.rejected_breaker;
        t.c_rej_breaker->add();
        break;
    case RejectReason::ShuttingDown:
        ++t.st.rejected_shutdown;
        t.c_rej_shutdown->add();
        break;
    case RejectReason::Timeout:
        ++t.st.rejected_timeout;
        t.c_rej_timeout->add();
        break;
    case RejectReason::None:
        break;
    }
}

JobId
Service::submit(TenantId tenant, runtime::JobPlan plan,
                const SubmitOptions &opts)
{
    std::unique_lock<std::mutex> lk(mu_);
    if (tenant >= tenants_.size())
        throw UdpError("Service::submit: unknown tenant id");
    Tenant &t = *tenants_[tenant];

    double now = now_s();
    auto rec = std::make_shared<JobRecord>();
    rec->id = next_id_++;
    rec->tenant = tenant;
    rec->plan = std::move(plan);
    rec->submit_s = now;
    if (opts.deadline_s > 0)
        rec->deadline_s = now + opts.deadline_s;
    jobs_[rec->id] = rec;
    ++t.st.submitted;
    t.c_submitted->add();

    bool degraded = false;
    if (stop_) {
        reject(*rec, t, RejectReason::ShuttingDown);
        return rec->id;
    }
    if (t.breaker.open(now)) {
        reject(*rec, t, RejectReason::BreakerOpen);
        return rec->id;
    }

    switch (t.opt.overflow) {
    case OverflowPolicy::Shed:
        if (t.queued >= t.opt.queue_capacity) {
            reject(*rec, t, RejectReason::QueueFull);
            return rec->id;
        }
        if (!t.bucket.try_take(now)) {
            reject(*rec, t, RejectReason::RateLimited);
            return rec->id;
        }
        break;

    case OverflowPolicy::Block: {
        const double give_up = now + t.opt.block_timeout_s;
        for (;;) {
            if (stop_) {
                reject(*rec, t, RejectReason::ShuttingDown);
                return rec->id;
            }
            now = now_s();
            const bool space = t.queued < t.opt.queue_capacity;
            const double to_token = t.bucket.seconds_to_token(now);
            if (space && to_token <= 0.0) {
                t.bucket.try_take(now);
                break;
            }
            if (now >= give_up) {
                reject(*rec, t, RejectReason::Timeout);
                return rec->id;
            }
            // Queue space arrivals signal cv_space_; token refills are
            // time-driven, so bound the nap by the refill horizon.
            double nap = give_up - now;
            if (space)
                nap = std::min(nap, std::max(to_token, 1e-4));
            else
                nap = std::min(nap, 0.05);
            cv_space_.wait_for(lk, std::chrono::duration<double>(nap));
        }
        break;
    }

    case OverflowPolicy::Degrade: {
        // Cheapen instead of refusing: over-rate or over-capacity jobs
        // are admitted with the degraded cycle budget, up to a hard cap
        // of twice the queue (past that even degraded work sheds).
        if (t.queued >= 2 * t.opt.queue_capacity) {
            reject(*rec, t, RejectReason::QueueFull);
            return rec->id;
        }
        const bool have_token = t.bucket.try_take(now);
        degraded = !have_token || t.queued >= t.opt.queue_capacity;
        break;
    }
    }

    if (degraded) {
        rec->degraded = true;
        rec->plan.max_cycles = t.opt.degraded_max_cycles;
        ++t.st.degraded;
        t.c_degraded->add();
    }
    t.queue.push_back(rec);
    ++t.queued;
    ++queued_total_;
    t.g_depth->set(static_cast<double>(t.queued));
    ++t.st.admitted;
    t.c_admitted->add();
    cv_work_.notify_one();
    return rec->id;
}

// ---------------------------------------------------------------------------
// Observation: poll / wait / cancel.
// ---------------------------------------------------------------------------

void
Service::make_terminal(JobRecord &rec, JobState state, double now)
{
    Tenant &t = *tenants_[rec.tenant];
    rec.state = state;
    rec.e2e_s = now - rec.submit_s;
    switch (state) {
    case JobState::Done:
        ++t.st.completed;
        t.c_completed->add();
        break;
    case JobState::Quarantined:
        ++t.st.quarantined;
        t.c_quarantined->add();
        break;
    case JobState::Cancelled:
        ++t.st.cancelled;
        t.c_cancelled->add();
        break;
    case JobState::Expired:
        ++t.st.expired;
        t.c_expired->add();
        break;
    default:
        break;
    }
    t.h_e2e_us->record(static_cast<std::uint64_t>(rec.e2e_s * 1e6));
}

JobOutcome
Service::snapshot_and_maybe_consume(const std::shared_ptr<JobRecord> &rec)
{
    JobOutcome out;
    out.id = rec->id;
    out.state = rec->state;
    out.reject = rec->reject;
    out.attempts = rec->attempts;
    if (out.terminal()) {
        out.result = std::move(rec->result);
        out.e2e_seconds = rec->e2e_s;
        jobs_.erase(rec->id); // consumed: the id is forgotten
    } else {
        out.e2e_seconds = now_s() - rec->submit_s;
    }
    return out;
}

std::optional<JobOutcome>
Service::poll(JobId id)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    auto rec = it->second;
    maybe_expire(*rec, now_s());
    return snapshot_and_maybe_consume(rec);
}

std::optional<JobOutcome>
Service::wait(JobId id, double timeout_s)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    auto rec = it->second;
    const double start = now_s();
    for (;;) {
        double now = now_s();
        maybe_expire(*rec, now);
        if (rec->state != JobState::Queued && rec->state != JobState::Running)
            break;
        if (timeout_s >= 0 && now - start >= timeout_s)
            break; // non-consuming snapshot below
        double nap = 0.05;
        if (timeout_s >= 0)
            nap = std::min(nap, timeout_s - (now - start));
        if (rec->deadline_s > 0 && rec->deadline_s > now)
            nap = std::min(nap, rec->deadline_s - now);
        cv_done_.wait_for(lk, std::chrono::duration<double>(
                                  std::max(nap, 1e-4)));
    }
    return snapshot_and_maybe_consume(rec);
}

bool
Service::cancel(JobId id)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false; // unknown or already consumed: no-op
    JobRecord &rec = *it->second;
    if (rec.state == JobState::Queued) {
        // Cancel-before-stage: terminal immediately; the queue entry
        // becomes a tombstone the next gather pops and skips.
        Tenant &t = *tenants_[rec.tenant];
        --t.queued;
        --queued_total_;
        t.g_depth->set(static_cast<double>(t.queued));
        make_terminal(rec, JobState::Cancelled, now_s());
        cv_done_.notify_all();
        cv_space_.notify_all();
        return true;
    }
    if (rec.state == JobState::Running) {
        // Cancel-mid-batch: flag into the Scheduler; the terminal state
        // arrives with the batch report.
        rec.cancel_requested = true;
        control_->cancel(rec.batch_index);
        return true;
    }
    return false; // already terminal: cancel-after-completion is a no-op
}

bool
Service::maybe_expire(JobRecord &rec, double now)
{
    if (rec.deadline_s <= 0 || now < rec.deadline_s)
        return false;
    if (rec.state == JobState::Queued) {
        Tenant &t = *tenants_[rec.tenant];
        --t.queued;
        --queued_total_;
        t.g_depth->set(static_cast<double>(t.queued));
        make_terminal(rec, JobState::Expired, now);
        cv_done_.notify_all();
        cv_space_.notify_all();
        return true;
    }
    if (rec.state == JobState::Running) {
        if (!rec.expired_pending) {
            rec.expired_pending = true;
            control_->cancel(rec.batch_index);
        }
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// The run loop.
// ---------------------------------------------------------------------------

auto
Service::gather_batch() -> std::vector<std::shared_ptr<JobRecord>>
{
    const double now = now_s();
    std::vector<std::shared_ptr<JobRecord>> batch;
    if (tenants_.empty())
        return batch;
    bool progress = true;
    while (progress && batch.size() < opts_.max_batch_jobs) {
        progress = false;
        for (std::size_t k = 0;
             k < tenants_.size() && batch.size() < opts_.max_batch_jobs; ++k) {
            Tenant &t = *tenants_[(rr_cursor_ + k) % tenants_.size()];
            // A tripped breaker holds the tenant's queue back too —
            // except under drain, which is work-conserving.
            if (!stop_ && t.breaker.open(now))
                continue;
            unsigned quota = t.opt.weight;
            while (quota > 0 && batch.size() < opts_.max_batch_jobs &&
                   !t.queue.empty()) {
                auto rec = t.queue.front();
                t.queue.pop_front();
                if (rec->state != JobState::Queued)
                    continue; // tombstone (cancelled/expired while queued)
                if (maybe_expire(*rec, now))
                    continue;
                --t.queued;
                --queued_total_;
                ++t.in_flight;
                batch.push_back(std::move(rec));
                --quota;
                progress = true;
            }
            t.g_depth->set(static_cast<double>(t.queued));
        }
        rr_cursor_ = (rr_cursor_ + 1) % tenants_.size();
    }
    if (!batch.empty())
        cv_space_.notify_all();
    return batch;
}

void
Service::finalize_batch(const std::vector<std::shared_ptr<JobRecord>> &batch,
                        runtime::ScheduleReport &&rep)
{
    const double now = now_s();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        JobRecord &rec = *batch[i];
        Tenant &t = *tenants_[rec.tenant];
        --t.in_flight;
        runtime::JobResult &r = rep.jobs[i];
        rec.attempts = r.attempts;
        JobState state;
        if (r.cancelled)
            state = rec.expired_pending ? JobState::Expired
                                        : JobState::Cancelled;
        else if (r.quarantined)
            state = JobState::Quarantined;
        else
            state = JobState::Done;
        rec.result = std::move(r);
        if (state == JobState::Quarantined || state == JobState::Done) {
            const unsigned before = t.breaker.trips();
            t.breaker.record(state == JobState::Quarantined, now);
            if (t.breaker.trips() != before) {
                t.st.breaker_trips = t.breaker.trips();
                t.c_trips->add(t.breaker.trips() - before);
            }
        }
        make_terminal(rec, state, now);
    }

    // Route this batch's new post-mortems to their tenants.  The
    // scheduler's deque holds up to keep_last reports across batches;
    // the last `faulted_runs` entries are this run's captures (the
    // ctor sizes keep_last so a batch's worst case fits).
    if (opts_.keep_postmortems_per_tenant > 0 && rep.faulted_runs > 0) {
        const auto &pms = scheduler_->postmortems();
        std::size_t fresh = std::min<std::size_t>(rep.faulted_runs,
                                                  pms.size());
        for (auto it = pms.end() - static_cast<std::ptrdiff_t>(fresh);
             it != pms.end(); ++it) {
            if (it->job_index >= batch.size())
                continue;
            Tenant &t = *tenants_[batch[it->job_index]->tenant];
            t.pms.push_back(*it);
            while (t.pms.size() > opts_.keep_postmortems_per_tenant)
                t.pms.pop_front();
        }
    }

    ++batches_;
    waves_ += rep.waves.size();
    jobs_run_ += batch.size();
}

void
Service::run_loop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_work_.wait(lk, [&] {
            return stop_ || queued_total_ > 0 || !recycle_list_.empty();
        });
        if (!recycle_list_.empty()) {
            // Only this thread touches the scheduler (and its pool), so
            // client recycles are applied here, between batches.
            for (auto &r : recycle_list_)
                scheduler_->recycle(std::move(r));
            recycle_list_.clear();
        }
        if (queued_total_ == 0) {
            if (stop_)
                break;
            continue;
        }
        auto batch = gather_batch();
        if (batch.empty()) {
            if (queued_total_ > 0 && !stop_) {
                // Everything queued belongs to breaker-open tenants:
                // nap until the earliest cool-down can end.
                const double now = now_s();
                double nap = 0.05;
                for (const auto &t : tenants_)
                    if (t->queued > 0 && t->breaker.open(now))
                        nap = std::min(nap,
                                       std::max(t->breaker.remaining(now),
                                                1e-3));
                cv_work_.wait_for(lk, std::chrono::duration<double>(nap));
            }
            continue;
        }

        control_->reset();
        std::vector<runtime::JobPlan> plans;
        plans.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            JobRecord &rec = *batch[i];
            rec.state = JobState::Running;
            rec.batch_index = i;
            plans.push_back(rec.plan); // views + shared_ptrs, no payload
            if (rec.cancel_requested)
                control_->cancel(i);
        }

        lk.unlock();
        runtime::ScheduleReport rep = scheduler_->run(plans);
        lk.lock();

        finalize_batch(batch, std::move(rep));
        cv_space_.notify_all();
        cv_done_.notify_all();
    }
    drained_ = true;
    cv_done_.notify_all();
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

ServiceStats
Service::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStats s;
    s.tenants.reserve(tenants_.size());
    for (const auto &t : tenants_) {
        TenantStats ts = t->st;
        ts.queue_depth = t->queued;
        ts.in_flight = t->in_flight;
        ts.breaker_trips = t->breaker.trips();
        s.tenants.push_back(std::move(ts));
    }
    s.batches = batches_;
    s.waves = waves_;
    s.jobs_run = jobs_run_;
    s.draining = stop_;
    s.drained = drained_;
    return s;
}

std::vector<runtime::FaultReport>
Service::postmortems(TenantId tenant) const
{
    std::lock_guard<std::mutex> lk(mu_);
    if (tenant >= tenants_.size())
        return {};
    const Tenant &t = *tenants_[tenant];
    return {t.pms.begin(), t.pms.end()};
}

std::string
Service::prometheus_text() const
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (const auto &t : tenants_)
            t->g_depth->set(static_cast<double>(t->queued));
    }
    return registry_->prometheus_text();
}

std::string
Service::metrics_json() const
{
    ServiceStats s = stats();
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("service").begin_object();
    w.field("batches", s.batches);
    w.field("waves", s.waves);
    w.field("jobs_run", s.jobs_run);
    w.field("draining", s.draining);
    w.field("drained", s.drained);
    w.key("tenants").begin_array();
    for (const TenantStats &t : s.tenants) {
        w.begin_object();
        w.field("name", t.name);
        w.field("submitted", t.submitted);
        w.field("admitted", t.admitted);
        w.field("degraded", t.degraded);
        w.field("completed", t.completed);
        w.field("quarantined", t.quarantined);
        w.field("cancelled", t.cancelled);
        w.field("expired", t.expired);
        w.field("rejected_rate_limited", t.rejected_rate_limited);
        w.field("rejected_queue_full", t.rejected_queue_full);
        w.field("rejected_breaker", t.rejected_breaker);
        w.field("rejected_shutdown", t.rejected_shutdown);
        w.field("rejected_timeout", t.rejected_timeout);
        w.field("breaker_trips", t.breaker_trips);
        w.field("queue_depth", std::uint64_t{t.queue_depth});
        w.field("in_flight", std::uint64_t{t.in_flight});
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("metrics");
    registry_->write_json(w);
    w.end_object();
    return os.str();
}

void
Service::recycle(JobOutcome &&outcome)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        recycle_list_.push_back(std::move(outcome.result));
    }
    cv_work_.notify_one();
}

} // namespace udp::service
