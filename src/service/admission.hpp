/**
 * @file
 * Admission-control primitives for udp_service (docs/SERVICE.md):
 * per-tenant token buckets and quarantine-rate circuit breakers.
 *
 * Both are plain value types driven by an explicit caller-supplied
 * clock (seconds as double, any monotone origin): no hidden syscalls,
 * so tests can script time exactly, and a bucket with `rate == 0`
 * never refills — a deterministic "burst quota" for reproducible
 * admission tests.  Neither type locks; the Service mutates them under
 * its own mutex.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>

namespace udp::service {

/**
 * Token-bucket rate limiter: capacity `burst` tokens, refilled
 * continuously at `rate` tokens/second.  One token admits one job, so
 * a tenant's sustained submission rate is capped at `rate` with bursts
 * of up to `burst` jobs passing unthrottled.
 */
class TokenBucket
{
  public:
    TokenBucket() = default;
    TokenBucket(double rate_per_s, double burst, double now_s)
        : rate_(rate_per_s), burst_(burst < 0 ? 0 : burst),
          tokens_(burst_), last_(now_s)
    {
    }

    /// Take one token if available; refills from elapsed time first.
    bool try_take(double now_s) {
        refill(now_s);
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    /// Current token count (after refilling to `now_s`).
    double tokens(double now_s) {
        refill(now_s);
        return tokens_;
    }

    /// Seconds until the next token exists (0 when one is available,
    /// a large sentinel when rate == 0 and the bucket is dry).
    double seconds_to_token(double now_s) {
        refill(now_s);
        if (tokens_ >= 1.0)
            return 0.0;
        if (rate_ <= 0.0)
            return 1e9;
        return (1.0 - tokens_) / rate_;
    }

  private:
    void refill(double now_s) {
        if (now_s > last_ && rate_ > 0.0)
            tokens_ = std::min(burst_, tokens_ + (now_s - last_) * rate_);
        last_ = std::max(last_, now_s);
    }

    double rate_ = 0.0;
    double burst_ = 0.0;
    double tokens_ = 0.0;
    double last_ = 0.0;
};

/**
 * Quarantine-rate circuit breaker: watches a tenant's last
 * `window` final job dispositions; when `trip_quarantines` of them are
 * quarantines, the breaker *trips* — the tenant goes into a cool-down
 * for `cooldown_s` seconds during which the Service neither admits its
 * submissions nor dispatches its queued jobs (drain excepted), so a
 * poisoned corpus cannot monopolize the retry budget.  After the
 * cool-down the breaker closes with a cleared window (one trip's
 * evidence is not recycled into the next).
 */
class CircuitBreaker
{
  public:
    struct Options {
        unsigned window = 32;            ///< dispositions remembered
        unsigned trip_quarantines = 4;   ///< quarantines in window to trip
        double cooldown_s = 0.5;         ///< open duration per trip
    };

    CircuitBreaker() = default;
    explicit CircuitBreaker(const Options &opt) : opt_(opt) {}

    /// Record one final disposition (true = quarantined).
    void record(bool quarantined, double now_s) {
        if (open(now_s))
            return; // dispositions of the trip batch don't re-trip
        window_.push_back(quarantined);
        if (quarantined)
            ++quarantined_in_window_;
        while (window_.size() > opt_.window) {
            if (window_.front())
                --quarantined_in_window_;
            window_.pop_front();
        }
        if (opt_.trip_quarantines > 0 &&
            quarantined_in_window_ >= opt_.trip_quarantines) {
            open_until_ = now_s + opt_.cooldown_s;
            ++trips_;
            window_.clear();
            quarantined_in_window_ = 0;
        }
    }

    /// Is the tenant in cool-down at `now_s`?  (Closes automatically
    /// when the cool-down has elapsed.)
    bool open(double now_s) const { return now_s < open_until_; }

    /// Seconds of cool-down remaining (0 when closed).
    double remaining(double now_s) const {
        return open(now_s) ? open_until_ - now_s : 0.0;
    }

    unsigned trips() const { return trips_; }

  private:
    Options opt_;
    std::deque<bool> window_;
    unsigned quarantined_in_window_ = 0;
    double open_until_ = 0.0;
    unsigned trips_ = 0;
};

} // namespace udp::service
