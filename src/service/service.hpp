/**
 * @file
 * udpd's core: an always-on, multi-tenant job service wrapping the wave
 * Scheduler (docs/SERVICE.md).
 *
 * Everything below the Scheduler is a batch world: one caller, one
 * vector of JobPlans, one report.  `Service` provides the always-on
 * shape the ROADMAP's `udpd` item asks for: many concurrent in-process
 * clients submit jobs into bounded per-tenant queues, a dedicated run
 * loop drains them through one Scheduler in weighted-fair batches, and
 * the robustness surface keeps the service responsive when tenants
 * misbehave or demand exceeds capacity:
 *
 *  - *Admission control*: a per-tenant token bucket (admission.hpp)
 *    caps each tenant's sustained submission rate; over-rate and
 *    over-capacity submissions hit the tenant's explicit
 *    `OverflowPolicy` — block with a timeout, shed with a `Rejected`
 *    outcome, or degrade to a smaller per-job cycle budget.
 *  - *Weighted-fair dispatch*: queued jobs are packed into Scheduler
 *    batches by deficit round-robin over tenant weights, so one noisy
 *    tenant cannot starve the rest.
 *  - *Deadlines & cancellation*: a queued job whose deadline passes is
 *    `Expired` without running; client `cancel()` propagates into the
 *    Scheduler through a `JobControl` handle — before staging it
 *    removes the job from the queue, mid-wave it discards the
 *    attempt's result and suppresses retries.
 *  - *Circuit breakers*: a tenant whose jobs keep quarantining trips
 *    into cool-down (admission.hpp) instead of burning retry budget.
 *  - *Graceful drain*: `drain()` stops admitting, finishes queued and
 *    in-flight waves (breakers no longer hold jobs back), flushes
 *    telemetry and post-mortems, and joins the run loop.
 *
 * The simulated results a client receives are bit-identical to what a
 * direct `Scheduler::run` of the same plans would produce (pinned by
 * Service.ResultsBitIdenticalToDirectScheduler): the service adds
 * policy, never semantics.
 */
#pragma once

#include "runtime/postmortem.hpp"
#include "runtime/scheduler.hpp"
#include "service/admission.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace udp::service {

using TenantId = std::size_t;
using JobId = std::uint64_t;

/// What happens when a submission exceeds the tenant's token bucket or
/// queue capacity (docs/SERVICE.md "Overflow policies").
enum class OverflowPolicy : std::uint8_t {
    /// Wait (up to `TenantOptions::block_timeout_s`) for a token and a
    /// queue slot; reject with `Timeout` when the wait expires.
    Block,
    /// Reject immediately (`RateLimited` / `QueueFull`).
    Shed,
    /// Admit anyway with `TenantOptions::degraded_max_cycles` as the
    /// job's cycle budget — load-shedding by cheapening work instead of
    /// refusing it.  The queue still hard-caps at twice its capacity.
    Degrade,
};

/// One tenant's contract with the service.
struct TenantOptions {
    std::string name;               ///< label on stats/metrics/postmortems
    double rate_jobs_per_s = 0;     ///< token refill rate (0 = no refill)
    double burst = 64;              ///< token-bucket capacity
    unsigned weight = 1;            ///< weighted-fair dispatch share (>= 1)
    std::size_t queue_capacity = 256;
    OverflowPolicy overflow = OverflowPolicy::Shed;
    double block_timeout_s = 0.25;  ///< Block policy wait cap
    /// Degrade policy budget (simulated cycles) for over-rate jobs.
    std::uint64_t degraded_max_cycles = 1u << 20;
    CircuitBreaker::Options breaker;
};

/// Terminal and in-flight states of one submitted job.
enum class JobState : std::uint8_t {
    Queued,      ///< admitted, waiting for a batch
    Running,     ///< in the batch the run loop is currently executing
    Done,        ///< completed; JobOutcome::result holds the payload
    Quarantined, ///< faulted on every attempt (JobOutcome::result.fault)
    Rejected,    ///< never admitted (JobOutcome::reject says why)
    Cancelled,   ///< client cancel() won (possibly mid-wave)
    Expired,     ///< deadline passed before the job could finish
};

/// Why a submission was rejected.
enum class RejectReason : std::uint8_t {
    None,
    RateLimited,  ///< token bucket empty (Shed policy)
    QueueFull,    ///< tenant queue at capacity (Shed / Degrade hard cap)
    BreakerOpen,  ///< tenant in circuit-breaker cool-down
    ShuttingDown, ///< service draining
    Timeout,      ///< Block policy wait expired
};

std::string_view job_state_name(JobState s);
std::string_view reject_reason_name(RejectReason r);

/// Per-submission knobs.
struct SubmitOptions {
    /// Relative deadline in host seconds (0 = none): a job still queued
    /// when it expires is dropped as `Expired`; a job running past it
    /// is cancelled into the Scheduler (mid-wave discard).
    double deadline_s = 0;
};

/**
 * Snapshot of one job's state; terminal outcomes are *consumed* — the
 * first poll()/wait() that observes a terminal state takes ownership
 * of the result and the service forgets the job id.
 */
struct JobOutcome {
    JobId id = 0;
    JobState state = JobState::Queued;
    RejectReason reject = RejectReason::None;
    /// Architectural result (Done / Quarantined; default elsewhere).
    /// Bit-identical to a direct Scheduler::run of the same plan.
    runtime::JobResult result;
    unsigned attempts = 0;     ///< scheduler runs the job received
    double e2e_seconds = 0;    ///< submit → terminal, host clock
    bool terminal() const { return state != JobState::Queued &&
                                   state != JobState::Running; }
};

/// Monotonic per-tenant accounting (ServiceStats::tenants).
struct TenantStats {
    std::string name;
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t degraded = 0;   ///< admitted with a degraded budget
    std::uint64_t rejected_rate_limited = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_breaker = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t rejected_timeout = 0;
    std::uint64_t completed = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t expired = 0;
    std::uint64_t breaker_trips = 0;
    std::size_t queue_depth = 0;  ///< current (not monotone)
    std::size_t in_flight = 0;    ///< current batch occupancy

    std::uint64_t rejected_total() const {
        return rejected_rate_limited + rejected_queue_full +
               rejected_breaker + rejected_shutdown + rejected_timeout;
    }
};

/// Whole-service snapshot (Service::stats()).
struct ServiceStats {
    std::vector<TenantStats> tenants; ///< indexed by TenantId
    std::uint64_t batches = 0;        ///< scheduler runs the loop issued
    std::uint64_t waves = 0;          ///< waves across those runs
    std::uint64_t jobs_run = 0;       ///< jobs handed to the Scheduler
    bool draining = false;
    bool drained = false;
};

/// Service construction knobs.
struct ServiceOptions {
    /// Scheduler configuration the run loop uses (retry policy, host
    /// threads, cycle budgets...).  `control`, `telemetry` and
    /// `postmortem.keep_last` are managed by the service itself.
    runtime::SchedulerOptions sched;
    /// Jobs per Scheduler batch (>= 1; one 64-lane wave by default).
    unsigned max_batch_jobs = kNumLanes;
    /// Post-mortem reports retained per tenant (ring, oldest dropped).
    std::size_t keep_postmortems_per_tenant = 8;
    /// External metric registry to publish into (nullptr = the service
    /// owns a private one; see Service::registry()).
    runtime::MetricRegistry *registry = nullptr;
};

class ServiceClient;

/**
 * The always-on multi-tenant front-end.  Thread-safe throughout:
 * submit/poll/wait/cancel may be called from any number of client
 * threads while the internal run loop executes batches.
 */
class Service
{
  public:
    explicit Service(ServiceOptions opts = {});
    /// Drains (stops admitting, finishes queued + in-flight) and joins.
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /// Add a tenant; the returned id is its handle (and stats index).
    TenantId register_tenant(const TenantOptions &opts);

    /// Tenant-bound convenience handle (cheap, copyable).
    ServiceClient client(TenantId tenant);

    /**
     * Submit a job for `tenant`.  Admission control runs here: the
     * outcome may already be terminal (`Rejected`) when the tenant is
     * over rate/capacity under a Shed policy, in breaker cool-down, or
     * the service is draining.  The returned id is always valid to
     * poll exactly once.  The plan's arena stays pinned by the plan
     * itself (runtime/arena.hpp) — submission never copies payload.
     */
    JobId submit(TenantId tenant, runtime::JobPlan plan,
                 const SubmitOptions &opts = {});

    /**
     * Observe a job.  Non-terminal states return a snapshot and keep
     * the job alive; the first observation of a terminal state consumes
     * it (moves the result out and forgets the id).  nullopt: unknown
     * or already-consumed id.
     */
    std::optional<JobOutcome> poll(JobId id);

    /**
     * Block until the job is terminal (or `timeout_s` elapses, when
     * >= 0), then consume it as poll() does.  Enforces the job's
     * deadline while waiting: a queued job that expires is dropped, a
     * running one is cancelled into the Scheduler.
     */
    std::optional<JobOutcome> wait(JobId id, double timeout_s = -1.0);

    /**
     * Request cancellation.  Returns true when the request can still
     * change the job's fate (it was queued or running); false for
     * terminal/unknown jobs (a cancel after completion is a no-op).
     * The terminal state arrives asynchronously — observe it via
     * poll()/wait().
     */
    bool cancel(JobId id);

    /**
     * Graceful shutdown: stop admitting (submissions reject with
     * `ShuttingDown`), finish every queued and in-flight job (breaker
     * cool-downs no longer gate dispatch — drain is work-conserving),
     * flush telemetry gauges, then stop the run loop.  Idempotent;
     * implied by the destructor.  Outcomes remain pollable afterwards.
     */
    void drain();

    ServiceStats stats() const;

    /// Tenant's retained post-mortem reports, oldest first — only its
    /// own (a tenant never sees another tenant's faults).
    std::vector<runtime::FaultReport> postmortems(TenantId tenant) const;

    /// The registry all service metrics land in (the constructor-given
    /// one, else the service-owned instance).
    runtime::MetricRegistry &registry() { return *registry_; }

    /// Prometheus-style text exposition of registry() — the /metrics
    /// payload (labeled per-tenant series; docs/SERVICE.md).
    std::string prometheus_text() const;

    /// JSON dump of registry() plus a "service" stats block.
    std::string metrics_json() const;

    /// Return a consumed outcome's buffers to the scheduler's pool so
    /// steady-state serving loops recycle instead of reallocating.
    void recycle(JobOutcome &&outcome);

  private:
    struct JobRecord;
    struct Tenant;

    double now_s() const;
    void run_loop();
    /// Build the next batch under the lock (weighted-fair deficit
    /// round-robin, deadline sweep); returns records in batch order.
    std::vector<std::shared_ptr<JobRecord>> gather_batch();
    void finalize_batch(const std::vector<std::shared_ptr<JobRecord>> &batch,
                        runtime::ScheduleReport &&rep);
    void reject(JobRecord &rec, Tenant &t, RejectReason why);
    /// Expire a queued/running job whose deadline passed; returns true
    /// when the record is (now) on an expiry path.
    bool maybe_expire(JobRecord &rec, double now);
    JobOutcome snapshot_and_maybe_consume(const std::shared_ptr<JobRecord> &rec);
    void make_terminal(JobRecord &rec, JobState state, double now);

    ServiceOptions opts_;
    std::unique_ptr<runtime::MetricRegistry> owned_registry_;
    runtime::MetricRegistry *registry_;
    std::unique_ptr<runtime::RegistryTelemetry> telemetry_;
    std::unique_ptr<runtime::Scheduler> scheduler_;

    mutable std::mutex mu_;
    std::condition_variable cv_work_;  ///< run loop: work available
    std::condition_variable cv_space_; ///< Block submitters: queue space
    std::condition_variable cv_done_;  ///< waiters: job became terminal
    std::vector<std::unique_ptr<Tenant>> tenants_;
    std::map<JobId, std::shared_ptr<JobRecord>> jobs_;
    JobId next_id_ = 1;
    std::size_t queued_total_ = 0;
    bool stop_ = false;
    bool drained_ = false;
    std::uint64_t batches_ = 0;
    std::uint64_t waves_ = 0;
    std::uint64_t jobs_run_ = 0;
    /// Persistent cancellation handle shared with the Scheduler (sized
    /// max_batch_jobs, re-armed between batches; client cancels flag
    /// the running job's batch index into it at any time).
    std::unique_ptr<runtime::JobControl> control_;
    /// Consumed results handed back via recycle(); drained into the
    /// scheduler's BufferPool by the run loop between batches, so
    /// clients never touch the pool concurrently with a harvest.
    std::vector<runtime::JobResult> recycle_list_;
    std::size_t rr_cursor_ = 0; ///< weighted-fair round-robin position

    std::chrono::steady_clock::time_point epoch_;
    std::thread loop_;
};

/// Tenant-bound handle: the client-facing API of docs/SERVICE.md.
/// Copyable and thread-safe (it only forwards to the Service).
class ServiceClient
{
  public:
    ServiceClient() = default;
    ServiceClient(Service *svc, TenantId tenant)
        : svc_(svc), tenant_(tenant) {}

    TenantId tenant() const { return tenant_; }

    JobId submit(runtime::JobPlan plan, const SubmitOptions &opts = {}) {
        return svc_->submit(tenant_, std::move(plan), opts);
    }
    std::optional<JobOutcome> poll(JobId id) { return svc_->poll(id); }
    std::optional<JobOutcome> wait(JobId id, double timeout_s = -1.0) {
        return svc_->wait(id, timeout_s);
    }
    bool cancel(JobId id) { return svc_->cancel(id); }
    std::vector<runtime::FaultReport> postmortems() const {
        return svc_->postmortems(tenant_);
    }

  private:
    Service *svc_ = nullptr;
    TenantId tenant_ = 0;
};

} // namespace udp::service
