/**
 * @file
 * Disassembler implementation.
 */
#include "disasm.hpp"

#include <sstream>

namespace udp {

std::string
format_transition(const Transition &t)
{
    std::ostringstream os;
    os << transition_type_name(t.type) << " sig=0x" << std::hex
       << unsigned(t.signature) << " target=0x" << t.target << std::dec;
    if (t.type == TransitionType::Refill) {
        os << " refill=" << unsigned(t.attach >> 5) << " act="
           << unsigned(t.attach & 0x1F);
    } else if (t.attach == kNoActions &&
               t.attach_mode == AttachMode::Direct) {
        os << " act=-";
    } else {
        os << " act=" << unsigned(t.attach);
    }
    os << (t.attach_mode == AttachMode::ScaledOffset ? " (scaled)" : "");
    return os.str();
}

std::string
format_action(const Action &a)
{
    std::ostringstream os;
    os << opcode_name(a.op);
    switch (action_format(a.op)) {
      case ActionFormat::Imm:
        os << " r" << unsigned(a.dst) << ", r" << unsigned(a.src) << ", "
           << a.imm;
        break;
      case ActionFormat::Imm2:
        os << " r" << unsigned(a.dst) << ", r" << unsigned(a.src) << ", "
           << a.imm1 << ", " << a.imm;
        break;
      case ActionFormat::Reg:
        os << " r" << unsigned(a.dst) << ", r" << unsigned(a.ref) << ", r"
           << unsigned(a.src);
        break;
    }
    if (a.last)
        os << " !last";
    return os.str();
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    os << "program: " << prog.states.size() << " states, "
       << prog.dispatch.size() << " dispatch words, "
       << prog.actions.size() << " action words, entry=0x" << std::hex
       << prog.entry << std::dec << "\n";

    for (const auto &st : prog.states) {
        os << "state @0x" << std::hex << st.base << std::dec
           << (st.reg_source ? " [r0-dispatch]" : "") << "\n";
        for (unsigned k = 1; k <= st.aux_count; ++k) {
            const Transition t =
                decode_transition(prog.dispatch[st.base - k]);
            os << "  aux[-" << k << "]: " << format_transition(t) << "\n";
        }
        for (Word sym = 0; sym <= st.max_symbol; ++sym) {
            const std::size_t slot = std::size_t{st.base} + sym;
            if (slot >= prog.dispatch.size())
                break;
            const Transition t = decode_transition(prog.dispatch[slot]);
            if (t.signature != state_signature(st.base))
                continue;
            if (t.type != TransitionType::Labeled &&
                t.type != TransitionType::Refill &&
                t.type != TransitionType::Flagged) {
                continue;
            }
            os << "  [" << sym << "]: " << format_transition(t) << "\n";
        }
    }

    os << "actions:\n";
    for (std::size_t i = 0; i < prog.actions.size(); ++i)
        os << "  " << i << ": " << format_action(decode_action(prog.actions[i]))
           << "\n";
    return os.str();
}

} // namespace udp
