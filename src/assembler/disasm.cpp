/**
 * @file
 * Disassembler implementation.
 */
#include "disasm.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace udp {

std::string
format_transition(const Transition &t)
{
    std::ostringstream os;
    os << transition_type_name(t.type) << " sig=0x" << std::hex
       << unsigned(t.signature) << " target=0x" << t.target << std::dec;
    if (t.type == TransitionType::Refill) {
        os << " refill=" << unsigned(t.attach >> 5) << " act="
           << unsigned(t.attach & 0x1F);
    } else if (t.attach == kNoActions &&
               t.attach_mode == AttachMode::Direct) {
        os << " act=-";
    } else {
        os << " act=" << unsigned(t.attach);
    }
    os << (t.attach_mode == AttachMode::ScaledOffset ? " (scaled)" : "");
    return os.str();
}

std::string
format_action(const Action &a)
{
    std::ostringstream os;
    os << opcode_name(a.op);
    switch (action_format(a.op)) {
      case ActionFormat::Imm:
        os << " r" << unsigned(a.dst) << ", r" << unsigned(a.src) << ", "
           << a.imm;
        break;
      case ActionFormat::Imm2:
        os << " r" << unsigned(a.dst) << ", r" << unsigned(a.src) << ", "
           << a.imm1 << ", " << a.imm;
        break;
      case ActionFormat::Reg:
        os << " r" << unsigned(a.dst) << ", r" << unsigned(a.ref) << ", r"
           << unsigned(a.src);
        break;
    }
    if (a.last)
        os << " !last";
    return os.str();
}

std::string
state_label(const Program &prog, std::uint32_t base)
{
    std::ostringstream os;
    os << "state @0x" << std::hex << base << std::dec;
    for (const auto &st : prog.states) {
        if (st.base == base) {
            if (st.reg_source)
                os << " [r0-dispatch]";
            break;
        }
    }
    return os.str();
}

StateSymbolizer
make_state_symbolizer(const Program &prog)
{
    std::map<std::uint32_t, std::string> labels;
    for (const auto &st : prog.states)
        labels.emplace(st.base, state_label(prog, st.base));
    return [labels = std::move(labels)](std::uint32_t base) {
        const auto it = labels.find(base);
        if (it != labels.end())
            return it->second;
        std::ostringstream os;
        os << "state @0x" << std::hex << base;
        return os.str();
    };
}

namespace {

/// Decode and format one dispatch word, rendering decoder rejections
/// (poisoned programs) instead of letting them unwind.
std::string
format_dispatch_word(const Program &prog, std::size_t slot)
{
    try {
        return format_transition(decode_transition(prog.dispatch[slot]));
    } catch (const std::exception &e) {
        std::ostringstream os;
        os << "<decode error: " << e.what() << "> raw=0x" << std::hex
           << prog.dispatch[slot];
        return os.str();
    }
}

} // namespace

std::string
disassemble_state(const Program &prog, std::uint32_t base)
{
    std::ostringstream os;
    const StateMeta *meta = nullptr;
    for (const auto &st : prog.states)
        if (st.base == base) {
            meta = &st;
            break;
        }

    if (!meta) {
        // Corrupted dispatch target: no state table starts here.  Show a
        // raw window around `base` so the report still has context.
        os << "state @0x" << std::hex << base << std::dec
           << " [no matching state table]\n";
        const std::size_t lo = base >= 4 ? base - 4 : 0;
        const std::size_t hi =
            std::min<std::size_t>(std::size_t{base} + 4,
                                  prog.dispatch.size());
        for (std::size_t slot = lo; slot < hi; ++slot)
            os << "  dispatch[0x" << std::hex << slot << std::dec
               << "]: " << format_dispatch_word(prog, slot) << "\n";
        if (lo >= hi)
            os << "  (base outside dispatch memory: "
               << prog.dispatch.size() << " words)\n";
        return os.str();
    }

    os << state_label(prog, base) << "\n";
    for (unsigned k = 1; k <= meta->aux_count; ++k) {
        if (std::uint64_t{k} > base)
            break;
        os << "  aux[-" << k << "]: "
           << format_dispatch_word(prog, base - k) << "\n";
    }
    for (Word sym = 0; sym <= meta->max_symbol; ++sym) {
        const std::size_t slot = std::size_t{base} + sym;
        if (slot >= prog.dispatch.size())
            break;
        os << "  [" << sym << "]: " << format_dispatch_word(prog, slot)
           << "\n";
    }
    return os.str();
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    os << "program: " << prog.states.size() << " states, "
       << prog.dispatch.size() << " dispatch words, "
       << prog.actions.size() << " action words, entry=0x" << std::hex
       << prog.entry << std::dec << "\n";

    for (const auto &st : prog.states) {
        os << state_label(prog, st.base) << "\n";
        for (unsigned k = 1; k <= st.aux_count; ++k) {
            const Transition t =
                decode_transition(prog.dispatch[st.base - k]);
            os << "  aux[-" << k << "]: " << format_transition(t) << "\n";
        }
        for (Word sym = 0; sym <= st.max_symbol; ++sym) {
            const std::size_t slot = std::size_t{st.base} + sym;
            if (slot >= prog.dispatch.size())
                break;
            const Transition t = decode_transition(prog.dispatch[slot]);
            if (t.signature != state_signature(st.base))
                continue;
            if (t.type != TransitionType::Labeled &&
                t.type != TransitionType::Refill &&
                t.type != TransitionType::Flagged) {
                continue;
            }
            os << "  [" << sym << "]: " << format_transition(t) << "\n";
        }
    }

    os << "actions:\n";
    for (std::size_t i = 0; i < prog.actions.size(); ++i)
        os << "  " << i << ": " << format_action(decode_action(prog.actions[i]))
           << "\n";
    return os.str();
}

} // namespace udp
