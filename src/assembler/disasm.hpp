/**
 * @file
 * Program disassembler: human-readable listings of dispatch and action
 * memory, used by tests, the quickstart example and debugging.
 */
#pragma once

#include "core/profile.hpp"
#include "core/program.hpp"

#include <string>

namespace udp {

/// One-line rendering of a decoded transition.
std::string format_transition(const Transition &t);

/// One-line rendering of a decoded action.
std::string format_action(const Action &a);

/// Label for the state whose labeled table starts at `base`, exactly as
/// it appears in disassemble() listings (e.g. "state @0x1f3" with an
/// " [r0-dispatch]" suffix for register-sourced states).
std::string state_label(const Program &prog, std::uint32_t base);

/// Symbolizer for Profiler::report(): resolves dispatch bases to the
/// same labels disassemble() prints.  Snapshots the state table, so the
/// returned callable does not reference `prog` afterwards.
StateSymbolizer make_state_symbolizer(const Program &prog);

/// Full program listing (states, their slots and action blocks).
std::string disassemble(const Program &prog);

/**
 * Listing of the single state whose labeled table starts at `base`,
 * for post-mortem fault reports (runtime/postmortem.hpp).
 *
 * Unlike `disassemble`, this never throws: post-mortems disassemble the
 * program a lane *faulted in*, which may hold poisoned words that the
 * decoder rejects.  Undecodable slots render as `<decode error: ...>`
 * lines instead.  A `base` matching no state (e.g. a corrupted dispatch
 * target) renders a raw hex window of the surrounding dispatch words.
 */
std::string disassemble_state(const Program &prog, std::uint32_t base);

} // namespace udp
