/**
 * @file
 * Program disassembler: human-readable listings of dispatch and action
 * memory, used by tests, the quickstart example and debugging.
 */
#pragma once

#include "core/program.hpp"

#include <string>

namespace udp {

/// One-line rendering of a decoded transition.
std::string format_transition(const Transition &t);

/// One-line rendering of a decoded action.
std::string format_action(const Action &a);

/// Full program listing (states, their slots and action blocks).
std::string disassemble(const Program &prog);

} // namespace udp
