/**
 * @file
 * EffCLiP: Efficient Coupled Linear Packing (paper Section 3.2.1 and
 * tech report [55]).
 *
 * Multi-way dispatch resolves `slot = base + symbol` with a fixed hash
 * (integer addition).  EffCLiP chooses per-state bases so that all states'
 * slot sets interleave densely in dispatch memory; the 8-bit signature
 * (here: `base & 0xFF`) detects when a probed slot belongs to another
 * state, letting one state's "holes" be filled with other states' words -
 * in effect a perfect hash over the placed code blocks.
 *
 * Safety argument encoded in `place()`:
 *  - A labeled probe only false-matches when the probed word (a) is of a
 *    labeled kind and (b) carries the prober's signature.  Words of two
 *    states can only satisfy (b) when their bases are congruent mod 256.
 *  - For dispatch widths <= 8 bits, same-signature states are >= 256 slots
 *    apart while ranges span <= 256 slots, so no probe of one can reach a
 *    labeled word of the other: dense packing is unconditionally safe.
 *  - For wider dispatch (flagged hash dispatch, etc.) the packer checks
 *    range overlaps between same-signature-class states explicitly.
 *  - Empty (never-placed) slots are encoded as epsilon-kind filler, which
 *    a labeled probe ignores regardless of signature.
 */
#pragma once

#include "builder.hpp"

#include <cstdint>
#include <vector>

namespace udp {

/// Result of packing: a base for every state plus occupancy stats.
struct Placement {
    std::vector<std::uint32_t> base;   ///< per-state full word address
    std::size_t extent_words = 0;      ///< highest used slot + 1
    std::size_t used_words = 0;        ///< occupied slots
};

/**
 * The packer. Operates on the builder's IR (friend access).
 */
class EffClip
{
  public:
    EffClip(const ProgramBuilder &builder, const LayoutOptions &opts,
            unsigned dispatch_width_bits);

    /// Compute a placement; throws UdpError on layout failure.
    Placement place();

  private:
    struct ClassEntry {
        std::uint32_t base;
        std::uint32_t range_end;             ///< base + 2^width
        std::vector<Word> labeled_symbols;   ///< slots are base+symbol
    };

    bool fits(const ProgramBuilder::StateIR &st, std::uint32_t base) const;
    bool class_safe(const ProgramBuilder::StateIR &st,
                    std::uint32_t base) const;
    void occupy(const ProgramBuilder::StateIR &st, StateId id,
                std::uint32_t base);

    const ProgramBuilder &b_;
    LayoutOptions opts_;
    unsigned width_;
    std::size_t capacity_;
    std::vector<std::uint8_t> occupied_;
    std::vector<std::uint8_t> base_taken_; ///< state bases must be unique
    std::vector<std::vector<ClassEntry>> classes_; ///< by signature (256)
    Placement out_;
};

} // namespace udp
