/**
 * @file
 * Textual UDP assembly (".udpasm"): the human-writable front-end of the
 * software stack (paper Section 4.3 - domain translators emit this
 * high-level assembly, the shared backend lays it out).
 *
 * Grammar (line oriented; ';' starts a comment):
 *
 *   .symbits N                 initial symbol size (1..32)
 *   .addressing local|global|restricted
 *   .entry NAME
 *
 *   state NAME [reg]:          a state ("[reg]" = r0-sourced dispatch)
 *       SYMBOL -> TARGET [refill K] [{ ACTION ; ACTION ... }]
 *       majority -> TARGET [{...}]
 *       default  -> TARGET [{...}]
 *       common   -> TARGET [{...}]
 *       epsilon  -> TARGET [{...}]
 *
 *   SYMBOL is a decimal/hex (0x..) number or a quoted char ('a', '\n').
 *   ACTION is "mnemonic operand, operand, ..." with rN registers and
 *   numeric immediates, e.g.  addi r1, r1, 1  /  outi 'x'  /
 *   loopcpy r6, r5, r4  /  halt.
 */
#pragma once

#include "builder.hpp"
#include "core/program.hpp"

#include <string>

namespace udp {

/// Assemble a textual program; throws UdpError with line diagnostics.
Program assemble(const std::string &source, const LayoutOptions &opts = {});

} // namespace udp
