/**
 * @file
 * ProgramBuilder backend: IR construction, action-block sharing, EffCLiP
 * placement, window-switch insertion, and machine-code emission.
 */
#include "builder.hpp"

#include "effclip.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace udp {

namespace {

/// Bit width needed to cover symbol values 0..max_symbol.
unsigned
bit_width(Word max_symbol)
{
    unsigned w = 1;
    while ((Word{1} << w) <= max_symbol && w < 32)
        ++w;
    return w;
}

/// Encoded form of an action block, used as the dedup key.
std::vector<Word>
encode_block(const std::vector<Action> &actions)
{
    std::vector<Word> words;
    words.reserve(actions.size());
    for (std::size_t i = 0; i < actions.size(); ++i) {
        Action a = actions[i];
        a.last = (i + 1 == actions.size()) && a.op != Opcode::Gotoact;
        words.push_back(encode_action(a));
    }
    return words;
}

struct BlockKey {
    std::vector<Word> words;
    bool operator==(const BlockKey &) const = default;
};

struct BlockKeyHash {
    std::size_t operator()(const BlockKey &k) const {
        std::size_t h = 0xcbf29ce484222325ull;
        for (Word w : k.words)
            h = (h ^ w) * 0x100000001b3ull;
        return h;
    }
};

} // namespace

// ---------------------------------------------------------------------------
// IR construction.
// ---------------------------------------------------------------------------

StateId
ProgramBuilder::add_state(bool reg_source)
{
    states_.push_back(StateIR{});
    states_.back().reg_source = reg_source;
    return static_cast<StateId>(states_.size() - 1);
}

BlockId
ProgramBuilder::add_block(std::vector<Action> actions)
{
    if (actions.empty())
        throw UdpError("ProgramBuilder: empty action block");
    blocks_.push_back(std::move(actions));
    return static_cast<BlockId>(blocks_.size() - 1);
}

void
ProgramBuilder::check_state(StateId s) const
{
    if (s >= states_.size())
        throw UdpError("ProgramBuilder: unknown state id");
}

ProgramBuilder::StateIR &
ProgramBuilder::state(StateId s)
{
    check_state(s);
    return states_[s];
}

void
ProgramBuilder::on_symbol(StateId from, Word symbol, StateId to,
                          BlockId block)
{
    check_state(to);
    StateIR &st = state(from);
    if (st.common)
        throw UdpError("ProgramBuilder: labeled arc on a common state");
    for (const auto &a : st.labeled)
        if (a.symbol == symbol)
            throw UdpError("ProgramBuilder: duplicate labeled symbol");
    Arc arc;
    arc.type = st.reg_source ? TransitionType::Flagged
                             : TransitionType::Labeled;
    arc.symbol = symbol;
    arc.to = to;
    arc.block = block;
    st.labeled.push_back(arc);
}

void
ProgramBuilder::on_symbol_refill(StateId from, Word symbol, StateId to,
                                 unsigned refill_bits, BlockId block)
{
    check_state(to);
    if (refill_bits > 7)
        throw UdpError("ProgramBuilder: refill count exceeds 3 bits; "
                       "use the refill action instead");
    StateIR &st = state(from);
    for (const auto &a : st.labeled)
        if (a.symbol == symbol)
            throw UdpError("ProgramBuilder: duplicate labeled symbol");
    Arc arc;
    arc.type = TransitionType::Refill;
    arc.symbol = symbol;
    arc.to = to;
    arc.block = block;
    arc.refill_bits = static_cast<std::uint8_t>(refill_bits);
    st.labeled.push_back(arc);
}

void
ProgramBuilder::on_majority(StateId from, StateId to, BlockId block)
{
    check_state(to);
    StateIR &st = state(from);
    if (st.majority)
        throw UdpError("ProgramBuilder: state already has a majority arc");
    st.majority = Arc{TransitionType::Majority, 0, to, block, 0};
}

void
ProgramBuilder::on_default(StateId from, StateId to, BlockId block)
{
    check_state(to);
    StateIR &st = state(from);
    if (st.deflt)
        throw UdpError("ProgramBuilder: state already has a default arc");
    st.deflt = Arc{TransitionType::Default, 0, to, block, 0};
}

void
ProgramBuilder::on_any(StateId from, StateId to, BlockId block)
{
    check_state(to);
    StateIR &st = state(from);
    if (st.common)
        throw UdpError("ProgramBuilder: state already has a common arc");
    if (!st.labeled.empty())
        throw UdpError("ProgramBuilder: common arc on a labeled state");
    st.common = Arc{TransitionType::Common, 0, to, block, 0};
}

void
ProgramBuilder::on_epsilon(StateId from, StateId to, BlockId block)
{
    check_state(to);
    state(from).epsilons.push_back(
        Arc{TransitionType::Epsilon, 0, to, block, 0});
}

void
ProgramBuilder::set_initial_symbol_bits(unsigned bits)
{
    if (bits == 0 || bits > 32)
        throw UdpError("ProgramBuilder: symbol size must be 1..32");
    initial_symbol_bits_ = bits;
}

// ---------------------------------------------------------------------------
// Backend.
// ---------------------------------------------------------------------------

Program
ProgramBuilder::build(const LayoutOptions &opts) const
{
    if (entry_ == kNoState)
        throw UdpError("ProgramBuilder: no entry state set");
    check_state(entry_);
    if (states_.empty())
        throw UdpError("ProgramBuilder: no states");

    // Dispatch width for layout-safety checks: widest probe any state can
    // issue.  Stream states probe up to the configured symbol size; the
    // builder conservatively uses the larger of the initial width and the
    // widest labeled symbol anywhere.
    Word max_sym = 0;
    std::size_t num_transitions = 0;
    for (const auto &st : states_) {
        for (const auto &a : st.labeled)
            max_sym = std::max(max_sym, a.symbol);
        num_transitions += st.footprint();
    }
    const unsigned width =
        std::max(initial_symbol_bits_, bit_width(max_sym));

    // --- 1. EffCLiP placement -------------------------------------------
    EffClip packer(*this, opts, width);
    Placement placement = packer.place();

    const std::size_t ww = opts.window_words;
    auto window_of = [&](std::uint32_t base) { return base / ww; };

    // --- 2. Effective action blocks (window switches + user blocks) -----
    // Blocks are deduplicated ("action block sharing", Section 4.3).
    std::vector<std::vector<Word>> final_blocks;
    std::vector<bool> block_refillable;
    std::unordered_map<BlockKey, std::size_t, BlockKeyHash> dedup;

    auto intern = [&](const std::vector<Action> &acts,
                      bool refill_ref) -> std::size_t {
        BlockKey key{encode_block(acts)};
        auto it = dedup.find(key);
        if (it == dedup.end()) {
            final_blocks.push_back(key.words);
            block_refillable.push_back(false);
            it = dedup.emplace(std::move(key), final_blocks.size() - 1)
                     .first;
        }
        if (refill_ref)
            block_refillable[it->second] = true;
        return it->second;
    };

    // Window-switch prologue for an arc entering `to_window`.
    auto switch_prologue = [&](std::size_t to_window) {
        std::vector<Action> acts;
        const std::uint64_t base_words = to_window * ww;
        if (base_words <= 32767) {
            acts.push_back(act_imm(Opcode::Movi, 13, 0,
                                   static_cast<std::int32_t>(base_words)));
        } else {
            acts.push_back(act_imm(Opcode::Movi, 13, 0,
                                   static_cast<std::int32_t>(to_window)));
            acts.push_back(act_imm(Opcode::Shli, 13, 13, 12));
        }
        acts.push_back(act_imm(Opcode::Setbase, 1, 13, 0));
        return acts;
    };

    // Resolve an arc to a block index (or SIZE_MAX for none).
    constexpr std::size_t kNone = ~std::size_t{0};
    auto arc_block = [&](const Arc &arc,
                         std::size_t from_window) -> std::size_t {
        const std::size_t to_window = window_of(placement.base[arc.to]);
        std::vector<Action> acts;
        if (to_window != from_window)
            acts = switch_prologue(to_window);
        if (arc.block != kNoBlock) {
            const auto &user = blocks_[arc.block];
            acts.insert(acts.end(), user.begin(), user.end());
        }
        if (acts.empty())
            return kNone;
        return intern(acts, arc.type == TransitionType::Refill);
    };

    // Walk every arc, collecting final blocks.
    struct EncodedArc {
        const Arc *arc;
        std::size_t block = kNone;
    };
    std::vector<std::vector<EncodedArc>> enc_labeled(states_.size());
    std::vector<std::vector<EncodedArc>> enc_aux(states_.size());

    for (StateId s = 0; s < states_.size(); ++s) {
        const auto &st = states_[s];
        const std::size_t w = window_of(placement.base[s]);
        for (const auto &a : st.labeled)
            enc_labeled[s].push_back({&a, arc_block(a, w)});
        // Auxiliary chain order: common, majority, default, epsilons.
        if (st.common)
            enc_aux[s].push_back({&*st.common, arc_block(*st.common, w)});
        if (st.majority)
            enc_aux[s].push_back(
                {&*st.majority, arc_block(*st.majority, w)});
        if (st.deflt)
            enc_aux[s].push_back({&*st.deflt, arc_block(*st.deflt, w)});
        for (const auto &e : st.epsilons)
            enc_aux[s].push_back({&e, arc_block(e, w)});
        if (enc_aux[s].size() > 255)
            throw UdpError("ProgramBuilder: auxiliary chain exceeds 255");
    }

    // --- 3. Action-memory layout ----------------------------------------
    // Refill-referenced blocks must start at word address <= 30 (5-bit
    // direct refs); other blocks are direct while they fit below 255,
    // then fall into the scaled-offset region (Section 3.2.1).
    std::vector<std::size_t> block_order(final_blocks.size());
    for (std::size_t i = 0; i < block_order.size(); ++i)
        block_order[i] = i;
    std::stable_sort(block_order.begin(), block_order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return block_refillable[a] > block_refillable[b];
                     });

    std::vector<Word> action_image;
    struct BlockRef {
        AttachMode mode = AttachMode::Direct;
        std::uint8_t ref = kNoActions;
    };
    std::vector<BlockRef> refs(final_blocks.size());

    std::size_t scale = 0;
    for (const auto &blk : final_blocks)
        while ((std::size_t{1} << scale) < blk.size())
            ++scale;

    std::vector<std::size_t> scaled; // block ids deferred to scaled region
    for (const std::size_t id : block_order) {
        const auto &blk = final_blocks[id];
        const std::size_t start = action_image.size();
        const std::size_t limit = block_refillable[id] ? 30 : 254;
        if (start <= limit) {
            refs[id] = {AttachMode::Direct,
                        static_cast<std::uint8_t>(start)};
            action_image.insert(action_image.end(), blk.begin(), blk.end());
        } else {
            if (block_refillable[id])
                throw UdpError("ProgramBuilder: refill action block does "
                               "not fit the 5-bit direct region");
            scaled.push_back(id);
        }
    }
    const std::size_t scaled_base = action_image.size();
    if (scaled.size() > 255)
        throw UdpError("ProgramBuilder: action space exhausted (more than "
                       "255 scaled blocks)");
    for (std::size_t k = 0; k < scaled.size(); ++k) {
        const std::size_t id = scaled[k];
        refs[id] = {AttachMode::ScaledOffset, static_cast<std::uint8_t>(k)};
        const std::size_t start = scaled_base + (k << scale);
        action_image.resize(std::max(action_image.size(),
                                     start + final_blocks[id].size()),
                            encode_action(act_imm(Opcode::Nop, 0, 0, 0,
                                                  true)));
        std::copy(final_blocks[id].begin(), final_blocks[id].end(),
                  action_image.begin() + start);
    }
    // Round up so the last scaled block slot exists fully.
    if (!scaled.empty()) {
        const std::size_t end =
            scaled_base + ((scaled.size() - 1) << scale) +
            (std::size_t{1} << scale);
        action_image.resize(
            std::max(action_image.size(), end),
            encode_action(act_imm(Opcode::Nop, 0, 0, 0, true)));
    }

    // --- 4. Emit dispatch image -----------------------------------------
    Program prog;
    prog.dispatch.assign(
        placement.extent_words,
        encode_transition(Transition{0, 0, TransitionType::Epsilon,
                                     AttachMode::Direct, kNoActions}));

    auto emit = [&](std::uint32_t slot, const Arc &arc, std::uint8_t sig,
                    std::size_t blk) {
        Transition t;
        t.signature = sig;
        t.target =
            static_cast<DispatchAddr>(placement.base[arc.to] % ww);
        t.type = arc.type;
        if (arc.type == TransitionType::Refill) {
            std::uint8_t ref5 = 0x1F;
            if (blk != kNone) {
                const BlockRef &r = refs[blk];
                if (r.ref > 30)
                    throw UdpError("ProgramBuilder: refill block ref "
                                   "exceeds 5 bits");
                ref5 = r.ref;
                t.attach_mode = r.mode;
            }
            t.attach = static_cast<std::uint8_t>(
                (arc.refill_bits << 5) | ref5);
        } else if (blk != kNone) {
            t.attach_mode = refs[blk].mode;
            t.attach = refs[blk].ref;
        } else {
            t.attach_mode = AttachMode::Direct;
            t.attach = kNoActions;
        }
        prog.dispatch[slot] = encode_transition(t);
    };

    prog.states.reserve(states_.size());
    for (StateId s = 0; s < states_.size(); ++s) {
        const auto &st = states_[s];
        const std::uint32_t base = placement.base[s];
        const std::uint8_t sig = state_signature(base);

        for (const auto &ea : enc_labeled[s])
            emit(base + ea.arc->symbol, *ea.arc, sig, ea.block);
        for (std::size_t k = 0; k < enc_aux[s].size(); ++k)
            emit(base - 1 - static_cast<std::uint32_t>(k),
                 *enc_aux[s][k].arc, sig, enc_aux[s][k].block);

        StateMeta meta;
        meta.base = base;
        meta.reg_source = st.reg_source;
        meta.aux_count = static_cast<std::uint8_t>(enc_aux[s].size());
        meta.max_symbol = static_cast<std::uint16_t>(
            st.labeled.empty() ? 0 : st.max_symbol());
        prog.states.push_back(meta);
    }

    prog.actions = std::move(action_image);
    prog.entry = placement.base[entry_];
    prog.initial_symbol_bits = initial_symbol_bits_;
    prog.addressing = addressing_;
    prog.init_action_base = static_cast<std::uint32_t>(scaled_base);
    prog.init_action_scale = static_cast<unsigned>(scale);
    prog.init_dispatch_base =
        static_cast<std::uint32_t>(window_of(prog.entry) * ww);

    prog.layout.dispatch_words = placement.extent_words;
    prog.layout.used_words = placement.used_words;
    prog.layout.action_words = prog.actions.size();
    prog.layout.num_states = states_.size();
    prog.layout.num_transitions = num_transitions;

    prog.index_states();
    prog.validate();
    return prog;
}

} // namespace udp
