/**
 * @file
 * EffCLiP packer implementation: first-fit (optionally decreasing) with
 * signature-class safety checks.
 */
#include "effclip.hpp"

#include <algorithm>
#include <numeric>

namespace udp {

EffClip::EffClip(const ProgramBuilder &builder, const LayoutOptions &opts,
                 unsigned dispatch_width_bits)
    : b_(builder), opts_(opts), width_(dispatch_width_bits),
      capacity_(opts.window_words * opts.max_windows),
      occupied_(capacity_, 0), base_taken_(capacity_, 0), classes_(256)
{
}

bool
EffClip::fits(const ProgramBuilder::StateIR &st, std::uint32_t base) const
{
    const std::size_t aux = st.aux_size();
    if (base < aux)
        return false;
    if (base >= capacity_ || base_taken_[base])
        return false;
    // Auxiliary chain below the base.
    for (std::size_t k = 1; k <= aux; ++k)
        if (occupied_[base - k])
            return false;
    // Labeled slots.
    for (const auto &a : st.labeled) {
        const std::size_t slot = std::size_t{base} + a.symbol;
        if (slot >= capacity_ || occupied_[slot])
            return false;
    }
    return true;
}

bool
EffClip::class_safe(const ProgramBuilder::StateIR &st,
                    std::uint32_t base) const
{
    // Widths <= 8 bits are unconditionally safe (see header).  The naive
    // per-state table mode is trivially safe as well.
    if (width_ <= 8 && !st.reg_source)
        return true;

    const auto &cls = classes_[base & 0xFF];
    const std::uint64_t my_end = std::uint64_t{base} + (1u << width_);
    for (const auto &e : cls) {
        // My probes reaching their labeled words?
        for (const Word sym : e.labeled_symbols) {
            const std::uint64_t slot = std::uint64_t{e.base} + sym;
            if (slot >= base && slot < my_end)
                return false;
        }
        // Their probes reaching my labeled words?
        for (const auto &a : st.labeled) {
            const std::uint64_t slot = std::uint64_t{base} + a.symbol;
            if (slot >= e.base && slot < e.range_end)
                return false;
        }
    }
    return true;
}

void
EffClip::occupy(const ProgramBuilder::StateIR &st, StateId id,
                std::uint32_t base)
{
    const std::size_t aux = st.aux_size();
    for (std::size_t k = 1; k <= aux; ++k) {
        occupied_[base - k] = 1;
        ++out_.used_words;
    }
    for (const auto &a : st.labeled) {
        occupied_[base + a.symbol] = 1;
        ++out_.used_words;
    }
    out_.base[id] = base;
    base_taken_[base] = 1;
    const std::size_t hi = st.labeled.empty()
                               ? base
                               : std::size_t{base} + st.max_symbol() + 1;
    out_.extent_words = std::max({out_.extent_words, hi, std::size_t{base} + 1});

    ClassEntry e;
    e.base = base;
    e.range_end = base + (1u << std::min(width_, 24u));
    for (const auto &a : st.labeled)
        e.labeled_symbols.push_back(a.symbol);
    classes_[base & 0xFF].push_back(std::move(e));
}

Placement
EffClip::place()
{
    const auto &states = b_.states_;
    out_.base.assign(states.size(), 0);

    std::vector<StateId> order(states.size());
    std::iota(order.begin(), order.end(), 0);
    if (opts_.sort_densest_first && !opts_.naive_tables) {
        std::stable_sort(order.begin(), order.end(),
                         [&](StateId a, StateId b) {
                             return states[a].footprint() >
                                    states[b].footprint();
                         });
    }

    if (opts_.naive_tables) {
        // BI-style layout: each state gets a private power-of-two table.
        const std::size_t table = std::size_t{1} << width_;
        std::size_t cursor = 0;
        for (const StateId id : order) {
            const auto &st = states[id];
            const std::size_t aux = st.aux_size();
            cursor += aux;
            if (cursor + table > capacity_)
                throw UdpError("EffCLiP: naive layout exceeds capacity");
            // Naive tables are aligned such that occupancy still holds.
            if (!fits(st, static_cast<std::uint32_t>(cursor)))
                throw UdpError("EffCLiP: naive layout collision");
            occupy(st, id, static_cast<std::uint32_t>(cursor));
            out_.extent_words =
                std::max(out_.extent_words, cursor + table);
            cursor += table;
        }
        return std::move(out_);
    }

    // First-fit (decreasing): scan for the lowest safe base per state.
    // `hint` skips the densely filled prefix to keep packing near-linear.
    std::size_t hint = 0;
    for (const StateId id : order) {
        const auto &st = states[id];
        const std::size_t aux = st.aux_size();
        bool placed = false;
        for (std::size_t base = std::max(hint, aux); base < capacity_;
             ++base) {
            const auto b32 = static_cast<std::uint32_t>(base);
            if (!fits(st, b32) || !class_safe(st, b32))
                continue;
            occupy(st, id, b32);
            placed = true;
            break;
        }
        if (!placed) {
            throw UdpError(
                "EffCLiP: layout failure - dispatch capacity exhausted (" +
                std::to_string(capacity_) + " words)");
        }
        while (hint < capacity_ && occupied_[hint])
            ++hint;
    }
    return std::move(out_);
}

} // namespace udp
