/**
 * @file
 * ProgramBuilder: the programmatic interface of the UDP software stack
 * (paper Section 4.3, Figure 12).
 *
 * Domain translators (CSV, Huffman, histogram, ... kernels) construct an
 * automaton+action IR through this API; `build()` runs the shared backend:
 * action-block deduplication/sharing, EffCLiP coupled-linear packing of
 * the dispatch memory, transition-type back-propagation, and machine-code
 * emission (Figure 6 formats).
 */
#pragma once

#include "core/isa.hpp"
#include "core/program.hpp"
#include "core/types.hpp"

#include <optional>
#include <vector>

namespace udp {

/// Identifier for a (dedup-shared) action block.
using BlockId = std::int32_t;
inline constexpr BlockId kNoBlock = -1;

/// Options controlling layout (see EffCLiP, paper [55]).
struct LayoutOptions {
    /// Dispatch window size in words (one 16 KiB bank = 4096).
    std::size_t window_words = kDispatchWords;
    /// Maximum windows the program may span (banks of code).
    unsigned max_windows = 1;
    /// Pack states in descending slot-count order (first-fit decreasing).
    bool sort_densest_first = true;
    /**
     * Naive table layout instead of EffCLiP packing: every state gets a
     * full 2^width-slot private table (the BI-style dispatch-table layout
     * of Figure 4b; used as the ablation baseline in Fig 5c).
     */
    bool naive_tables = false;
};

/**
 * Builder for UDP programs.
 *
 * States are created with `add_state`; arcs with the `on_*` methods.
 * A state marked `reg_source` dispatches on scalar register r0 (its
 * outgoing arcs become `flagged` transitions; paper Section 3.2.3).
 */
class ProgramBuilder
{
  public:
    /// Create a state; returns its id. `reg_source` selects r0 dispatch.
    StateId add_state(bool reg_source = false);

    /// Number of states added so far.
    std::size_t num_states() const { return states_.size(); }

    /// Register an action block (deduplicated); returns its id.
    BlockId add_block(std::vector<Action> actions);

    /// Labeled transition on `symbol` (a `flagged` one on r0-states).
    void on_symbol(StateId from, Word symbol, StateId to,
                   BlockId block = kNoBlock);

    /// Labeled transition that also pushes back `refill_bits` (SsRef).
    void on_symbol_refill(StateId from, Word symbol, StateId to,
                          unsigned refill_bits, BlockId block = kNoBlock);

    /// Majority fallback (destination shared by this state's other arcs).
    void on_majority(StateId from, StateId to, BlockId block = kNoBlock);

    /// Default fallback (shared across states; lowest priority).
    void on_default(StateId from, StateId to, BlockId block = kNoBlock);

    /// Common transition: always taken, replaces all labeled arcs.
    void on_any(StateId from, StateId to, BlockId block = kNoBlock);

    /// Epsilon transition (NFA multi-state activation).
    void on_epsilon(StateId from, StateId to, BlockId block = kNoBlock);

    void set_entry(StateId s) { entry_ = s; }
    void set_initial_symbol_bits(unsigned bits);
    void set_addressing(AddressingMode m) { addressing_ = m; }

    /// Run the backend; throws UdpError on layout failure.
    Program build(const LayoutOptions &opts = {}) const;

  private:
    friend class EffClip;

    struct Arc {
        TransitionType type;
        Word symbol = 0;        ///< labeled/refill only
        StateId to = kNoState;
        BlockId block = kNoBlock;
        std::uint8_t refill_bits = 0;
    };

    struct StateIR {
        bool reg_source = false;
        std::vector<Arc> labeled;          ///< labeled + refill arcs
        std::optional<Arc> majority;
        std::optional<Arc> deflt;
        std::optional<Arc> common;
        std::vector<Arc> epsilons;

        std::size_t aux_size() const {
            return (common ? 1u : 0u) + (majority ? 1u : 0u) +
                   (deflt ? 1u : 0u) + epsilons.size();
        }
        /// Number of dispatch words this state occupies.
        std::size_t footprint() const {
            return labeled.size() + aux_size();
        }
        Word max_symbol() const {
            Word m = 0;
            for (const auto &a : labeled)
                m = std::max(m, a.symbol);
            return m;
        }
    };

    StateIR &state(StateId s);
    void check_state(StateId s) const;

    std::vector<StateIR> states_;
    std::vector<std::vector<Action>> blocks_;
    StateId entry_ = kNoState;
    unsigned initial_symbol_bits_ = 8;
    AddressingMode addressing_ = AddressingMode::Restricted;
};

} // namespace udp
