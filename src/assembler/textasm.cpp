/**
 * @file
 * Textual assembler implementation: a line-oriented recursive parser
 * feeding ProgramBuilder.
 */
#include "textasm.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace udp {

namespace {

/// One parsed source line with its number for diagnostics.
struct Line {
    int number;
    std::string text;
};

[[noreturn]] void
fail(int line, const std::string &msg)
{
    throw UdpError("asm line " + std::to_string(line) + ": " + msg);
}

std::string
strip(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    // Strip comments: ';' outside quotes and outside action blocks
    // (inside '{...}' a ';' separates actions, not a comment).
    bool quoted = false;
    int braces = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\'')
            quoted = !quoted;
        else if (quoted)
            continue;
        else if (s[i] == '{')
            ++braces;
        else if (s[i] == '}')
            --braces;
        else if (s[i] == ';' && braces == 0) {
            e = i;
            break;
        }
    }
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/// Token scanner for one line.
class Scanner
{
  public:
    Scanner(std::string text, int line)
        : text_(std::move(text)), line_(line)
    {
    }

    bool eof() {
        skip_ws();
        return pos_ >= text_.size();
    }

    /// Next bare word ([A-Za-z_.][A-Za-z0-9_]*).
    std::string word() {
        skip_ws();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.'))
            ++pos_;
        if (start == pos_)
            fail(line_, "expected identifier near '" + rest() + "'");
        return text_.substr(start, pos_ - start);
    }

    /// Numeric or char literal.
    std::int64_t literal() {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '\'') {
            ++pos_;
            if (pos_ >= text_.size())
                fail(line_, "unterminated char literal");
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail(line_, "unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case '0': c = '\0'; break;
                  case '\\': c = '\\'; break;
                  case '\'': c = '\''; break;
                  default: fail(line_, "bad escape");
                }
            }
            if (pos_ >= text_.size() || text_[pos_++] != '\'')
                fail(line_, "unterminated char literal");
            return static_cast<unsigned char>(c);
        }
        bool neg = false;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            neg = true;
            ++pos_;
        }
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            fail(line_, "expected number near '" + rest() + "'");
        std::int64_t v = 0;
        if (text_.compare(pos_, 2, "0x") == 0 ||
            text_.compare(pos_, 2, "0X") == 0) {
            pos_ += 2;
            while (pos_ < text_.size() &&
                   std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                const char c = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(text_[pos_])));
                v = v * 16 + (c >= 'a' ? c - 'a' + 10 : c - '0');
                ++pos_;
            }
        } else {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                v = v * 10 + (text_[pos_++] - '0');
        }
        return neg ? -v : v;
    }

    bool accept(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool accept(const std::string &s) {
        skip_ws();
        if (text_.compare(pos_, s.size(), s) == 0) {
            pos_ += s.size();
            return true;
        }
        return false;
    }

    void expect(char c) {
        if (!accept(c))
            fail(line_, std::string("expected '") + c + "' near '" +
                            rest() + "'");
    }

    void expect(const std::string &s) {
        if (!accept(s))
            fail(line_, "expected '" + s + "' near '" + rest() + "'");
    }

    bool peek_is(char c) {
        skip_ws();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    std::string rest() { return text_.substr(pos_); }
    int line() const { return line_; }

  private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string text_;
    std::size_t pos_ = 0;
    int line_;
};

/// Parse one action: "mnemonic [operand[, operand...]]".
Action
parse_action(Scanner &sc)
{
    const std::string name = sc.word();
    const auto op = opcode_from_name(name);
    if (!op)
        fail(sc.line(), "unknown action '" + name + "'");

    auto reg_operand = [&]() -> unsigned {
        sc.expect('r');
        const auto v = sc.literal();
        if (v < 0 || v >= kNumScalarRegs)
            fail(sc.line(), "bad register r" + std::to_string(v));
        return static_cast<unsigned>(v);
    };
    auto imm_operand = [&]() -> std::int32_t {
        return static_cast<std::int32_t>(sc.literal());
    };

    Action a;
    a.op = *op;
    switch (action_format(*op)) {
      case ActionFormat::Imm: {
        // Zero-operand conveniences first.
        if (*op == Opcode::Halt || *op == Opcode::Fail ||
            *op == Opcode::Nop || *op == Opcode::Outflush)
            break;
        // Single-immediate conveniences: outi 'x' / accept N / skip N /
        // refill N / setss N / gotoact N.
        if (*op == Opcode::Outi || *op == Opcode::Accept ||
            *op == Opcode::Skip || *op == Opcode::Refill ||
            *op == Opcode::Setss || *op == Opcode::Gotoact) {
            a.imm = imm_operand();
            break;
        }
        // dst, imm conveniences: movi rD, N / lui rD, N.
        if (*op == Opcode::Movi || *op == Opcode::Lui) {
            a.dst = static_cast<std::uint8_t>(reg_operand());
            sc.expect(',');
            a.imm = imm_operand();
            break;
        }
        // Reg-then-imm conveniences: outb rS / outw rS / tell rD.
        if (*op == Opcode::Outb || *op == Opcode::Outw ||
            *op == Opcode::Setssr) {
            a.src = static_cast<std::uint8_t>(reg_operand());
            break;
        }
        if (*op == Opcode::Tell || *op == Opcode::Lastsym) {
            a.dst = static_cast<std::uint8_t>(reg_operand());
            break;
        }
        // General form: dst, src, imm.
        a.dst = static_cast<std::uint8_t>(reg_operand());
        sc.expect(',');
        a.src = static_cast<std::uint8_t>(reg_operand());
        sc.expect(',');
        a.imm = imm_operand();
        break;
      }
      case ActionFormat::Imm2:
        a.dst = 0;
        a.src = static_cast<std::uint8_t>(reg_operand());
        sc.expect(',');
        a.imm1 = imm_operand(); // scale
        sc.expect(',');
        a.imm = imm_operand(); // base
        break;
      case ActionFormat::Reg:
        a.dst = static_cast<std::uint8_t>(reg_operand());
        sc.expect(',');
        a.ref = static_cast<std::uint8_t>(reg_operand());
        sc.expect(',');
        a.src = static_cast<std::uint8_t>(reg_operand());
        break;
    }
    return a;
}

} // namespace

Program
assemble(const std::string &source, const LayoutOptions &opts)
{
    // Split into significant lines.
    std::vector<Line> lines;
    {
        std::istringstream in(source);
        std::string raw;
        int n = 0;
        while (std::getline(in, raw)) {
            ++n;
            const std::string s = strip(raw);
            if (!s.empty())
                lines.push_back({n, s});
        }
    }

    ProgramBuilder b;
    std::map<std::string, StateId> states;
    std::string entry_name;
    unsigned symbits = 8;

    // Pass 1: collect state declarations (forward references allowed).
    for (const auto &ln : lines) {
        Scanner sc(ln.text, ln.number);
        if (!sc.accept("state "))
            continue;
        Scanner sc2(ln.text, ln.number);
        sc2.expect("state");
        const std::string name = sc2.word();
        const bool reg_source = sc2.accept("[reg]");
        sc2.expect(':');
        if (states.count(name))
            fail(ln.number, "duplicate state '" + name + "'");
        states.emplace(name, b.add_state(reg_source));
    }

    auto state_of = [&](const std::string &name, int line) -> StateId {
        const auto it = states.find(name);
        if (it == states.end())
            fail(line, "unknown state '" + name + "'");
        return it->second;
    };

    // Pass 2: directives and arcs.
    StateId current = kNoState;
    for (const auto &ln : lines) {
        Scanner sc(ln.text, ln.number);

        if (sc.accept(".symbits")) {
            symbits = static_cast<unsigned>(sc.literal());
            continue;
        }
        if (sc.accept(".addressing")) {
            const std::string m = sc.word();
            if (m == "local")
                b.set_addressing(AddressingMode::Local);
            else if (m == "global")
                b.set_addressing(AddressingMode::Global);
            else if (m == "restricted")
                b.set_addressing(AddressingMode::Restricted);
            else
                fail(ln.number, "bad addressing mode '" + m + "'");
            continue;
        }
        if (sc.accept(".entry")) {
            entry_name = sc.word();
            continue;
        }
        if (sc.accept("state ")) {
            Scanner sc2(ln.text, ln.number);
            sc2.expect("state");
            current = state_of(sc2.word(), ln.number);
            continue;
        }

        // Arc line.
        if (current == kNoState)
            fail(ln.number, "arc outside of a state block");

        enum class Kind { Symbol, Majority, Default, Common, Epsilon };
        Kind kind = Kind::Symbol;
        Word symbol = 0;
        if (sc.accept("majority"))
            kind = Kind::Majority;
        else if (sc.accept("default"))
            kind = Kind::Default;
        else if (sc.accept("common"))
            kind = Kind::Common;
        else if (sc.accept("epsilon"))
            kind = Kind::Epsilon;
        else
            symbol = static_cast<Word>(sc.literal());

        sc.expect("->");
        const StateId target = state_of(sc.word(), ln.number);

        unsigned refill_bits = 0;
        if (sc.accept("refill"))
            refill_bits = static_cast<unsigned>(sc.literal());

        BlockId blk = kNoBlock;
        if (sc.accept('{')) {
            std::vector<Action> acts;
            for (;;) {
                acts.push_back(parse_action(sc));
                if (sc.accept(';'))
                    continue;
                sc.expect('}');
                break;
            }
            blk = b.add_block(std::move(acts));
        }
        if (!sc.eof())
            fail(ln.number, "trailing junk: '" + sc.rest() + "'");

        switch (kind) {
          case Kind::Symbol:
            if (refill_bits)
                b.on_symbol_refill(current, symbol, target, refill_bits,
                                   blk);
            else
                b.on_symbol(current, symbol, target, blk);
            break;
          case Kind::Majority: b.on_majority(current, target, blk); break;
          case Kind::Default: b.on_default(current, target, blk); break;
          case Kind::Common: b.on_any(current, target, blk); break;
          case Kind::Epsilon: b.on_epsilon(current, target, blk); break;
        }
    }

    if (entry_name.empty())
        throw UdpError("asm: missing .entry directive");
    b.set_entry(state_of(entry_name, 0));
    b.set_initial_symbol_bits(symbits);
    return b.build(opts);
}

} // namespace udp
