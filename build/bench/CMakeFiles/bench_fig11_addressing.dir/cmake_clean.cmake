file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_addressing.dir/bench_fig11_addressing.cpp.o"
  "CMakeFiles/bench_fig11_addressing.dir/bench_fig11_addressing.cpp.o.d"
  "bench_fig11_addressing"
  "bench_fig11_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
