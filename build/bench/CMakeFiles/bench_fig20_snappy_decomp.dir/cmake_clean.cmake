file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_snappy_decomp.dir/bench_fig20_snappy_decomp.cpp.o"
  "CMakeFiles/bench_fig20_snappy_decomp.dir/bench_fig20_snappy_decomp.cpp.o.d"
  "bench_fig20_snappy_decomp"
  "bench_fig20_snappy_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_snappy_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
