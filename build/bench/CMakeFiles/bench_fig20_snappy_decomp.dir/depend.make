# Empty dependencies file for bench_fig20_snappy_decomp.
# This may be replaced when dependencies are built.
