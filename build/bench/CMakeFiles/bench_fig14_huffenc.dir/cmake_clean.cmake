file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_huffenc.dir/bench_fig14_huffenc.cpp.o"
  "CMakeFiles/bench_fig14_huffenc.dir/bench_fig14_huffenc.cpp.o.d"
  "bench_fig14_huffenc"
  "bench_fig14_huffenc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_huffenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
