# Empty compiler generated dependencies file for bench_fig13_csv.
# This may be replaced when dependencies are built.
