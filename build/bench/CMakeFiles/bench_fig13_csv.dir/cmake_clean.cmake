file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_csv.dir/bench_fig13_csv.cpp.o"
  "CMakeFiles/bench_fig13_csv.dir/bench_fig13_csv.cpp.o.d"
  "bench_fig13_csv"
  "bench_fig13_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
