# Empty dependencies file for bench_tab01_coverage.
# This may be replaced when dependencies are built.
