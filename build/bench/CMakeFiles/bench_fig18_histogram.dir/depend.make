# Empty dependencies file for bench_fig18_histogram.
# This may be replaced when dependencies are built.
