file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_varsym.dir/bench_fig08_varsym.cpp.o"
  "CMakeFiles/bench_fig08_varsym.dir/bench_fig08_varsym.cpp.o.d"
  "bench_fig08_varsym"
  "bench_fig08_varsym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_varsym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
