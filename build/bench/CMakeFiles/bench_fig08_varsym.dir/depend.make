# Empty dependencies file for bench_fig08_varsym.
# This may be replaced when dependencies are built.
