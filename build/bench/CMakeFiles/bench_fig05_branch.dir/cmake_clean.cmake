file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_branch.dir/bench_fig05_branch.cpp.o"
  "CMakeFiles/bench_fig05_branch.dir/bench_fig05_branch.cpp.o.d"
  "bench_fig05_branch"
  "bench_fig05_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
