# Empty dependencies file for bench_tab03_power_area.
# This may be replaced when dependencies are built.
