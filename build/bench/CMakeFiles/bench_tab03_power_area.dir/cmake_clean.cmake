file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_power_area.dir/bench_tab03_power_area.cpp.o"
  "CMakeFiles/bench_tab03_power_area.dir/bench_tab03_power_area.cpp.o.d"
  "bench_tab03_power_area"
  "bench_tab03_power_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_power_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
