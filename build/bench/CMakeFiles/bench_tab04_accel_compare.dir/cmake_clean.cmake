file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_accel_compare.dir/bench_tab04_accel_compare.cpp.o"
  "CMakeFiles/bench_tab04_accel_compare.dir/bench_tab04_accel_compare.cpp.o.d"
  "bench_tab04_accel_compare"
  "bench_tab04_accel_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_accel_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
