# Empty dependencies file for bench_tab04_accel_compare.
# This may be replaced when dependencies are built.
