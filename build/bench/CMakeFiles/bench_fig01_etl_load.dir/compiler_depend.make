# Empty compiler generated dependencies file for bench_fig01_etl_load.
# This may be replaced when dependencies are built.
