file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_workloads.dir/bench_tab02_workloads.cpp.o"
  "CMakeFiles/bench_tab02_workloads.dir/bench_tab02_workloads.cpp.o.d"
  "bench_tab02_workloads"
  "bench_tab02_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
