# Empty dependencies file for bench_tab02_workloads.
# This may be replaced when dependencies are built.
