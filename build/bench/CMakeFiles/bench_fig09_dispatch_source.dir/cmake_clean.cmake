file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_dispatch_source.dir/bench_fig09_dispatch_source.cpp.o"
  "CMakeFiles/bench_fig09_dispatch_source.dir/bench_fig09_dispatch_source.cpp.o.d"
  "bench_fig09_dispatch_source"
  "bench_fig09_dispatch_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_dispatch_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
