# Empty compiler generated dependencies file for bench_fig09_dispatch_source.
# This may be replaced when dependencies are built.
