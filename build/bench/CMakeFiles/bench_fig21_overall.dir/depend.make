# Empty dependencies file for bench_fig21_overall.
# This may be replaced when dependencies are built.
