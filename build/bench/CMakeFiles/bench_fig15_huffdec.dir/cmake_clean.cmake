file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_huffdec.dir/bench_fig15_huffdec.cpp.o"
  "CMakeFiles/bench_fig15_huffdec.dir/bench_fig15_huffdec.cpp.o.d"
  "bench_fig15_huffdec"
  "bench_fig15_huffdec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_huffdec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
