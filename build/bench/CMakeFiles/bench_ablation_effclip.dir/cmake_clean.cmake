file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_effclip.dir/bench_ablation_effclip.cpp.o"
  "CMakeFiles/bench_ablation_effclip.dir/bench_ablation_effclip.cpp.o.d"
  "bench_ablation_effclip"
  "bench_ablation_effclip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_effclip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
