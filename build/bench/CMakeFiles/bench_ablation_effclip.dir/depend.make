# Empty dependencies file for bench_ablation_effclip.
# This may be replaced when dependencies are built.
