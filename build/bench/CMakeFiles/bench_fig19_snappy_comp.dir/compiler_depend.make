# Empty compiler generated dependencies file for bench_fig19_snappy_comp.
# This may be replaced when dependencies are built.
