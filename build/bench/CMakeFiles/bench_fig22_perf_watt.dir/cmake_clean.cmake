file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_perf_watt.dir/bench_fig22_perf_watt.cpp.o"
  "CMakeFiles/bench_fig22_perf_watt.dir/bench_fig22_perf_watt.cpp.o.d"
  "bench_fig22_perf_watt"
  "bench_fig22_perf_watt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_perf_watt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
