# Empty compiler generated dependencies file for bench_fig22_perf_watt.
# This may be replaced when dependencies are built.
