file(REMOVE_RECURSE
  "libudp_etl.a"
)
