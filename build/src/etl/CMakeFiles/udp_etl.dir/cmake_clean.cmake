file(REMOVE_RECURSE
  "CMakeFiles/udp_etl.dir/columnar.cpp.o"
  "CMakeFiles/udp_etl.dir/columnar.cpp.o.d"
  "CMakeFiles/udp_etl.dir/loader.cpp.o"
  "CMakeFiles/udp_etl.dir/loader.cpp.o.d"
  "libudp_etl.a"
  "libudp_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
