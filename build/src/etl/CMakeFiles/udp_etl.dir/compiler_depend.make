# Empty compiler generated dependencies file for udp_etl.
# This may be replaced when dependencies are built.
