
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/builder.cpp" "src/assembler/CMakeFiles/udp_asm.dir/builder.cpp.o" "gcc" "src/assembler/CMakeFiles/udp_asm.dir/builder.cpp.o.d"
  "/root/repo/src/assembler/disasm.cpp" "src/assembler/CMakeFiles/udp_asm.dir/disasm.cpp.o" "gcc" "src/assembler/CMakeFiles/udp_asm.dir/disasm.cpp.o.d"
  "/root/repo/src/assembler/effclip.cpp" "src/assembler/CMakeFiles/udp_asm.dir/effclip.cpp.o" "gcc" "src/assembler/CMakeFiles/udp_asm.dir/effclip.cpp.o.d"
  "/root/repo/src/assembler/textasm.cpp" "src/assembler/CMakeFiles/udp_asm.dir/textasm.cpp.o" "gcc" "src/assembler/CMakeFiles/udp_asm.dir/textasm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/udp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
