file(REMOVE_RECURSE
  "CMakeFiles/udp_asm.dir/builder.cpp.o"
  "CMakeFiles/udp_asm.dir/builder.cpp.o.d"
  "CMakeFiles/udp_asm.dir/disasm.cpp.o"
  "CMakeFiles/udp_asm.dir/disasm.cpp.o.d"
  "CMakeFiles/udp_asm.dir/effclip.cpp.o"
  "CMakeFiles/udp_asm.dir/effclip.cpp.o.d"
  "CMakeFiles/udp_asm.dir/textasm.cpp.o"
  "CMakeFiles/udp_asm.dir/textasm.cpp.o.d"
  "libudp_asm.a"
  "libudp_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
