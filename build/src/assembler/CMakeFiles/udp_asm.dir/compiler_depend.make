# Empty compiler generated dependencies file for udp_asm.
# This may be replaced when dependencies are built.
