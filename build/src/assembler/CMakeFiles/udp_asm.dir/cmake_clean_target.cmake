file(REMOVE_RECURSE
  "libudp_asm.a"
)
