file(REMOVE_RECURSE
  "CMakeFiles/udp_core.dir/energy.cpp.o"
  "CMakeFiles/udp_core.dir/energy.cpp.o.d"
  "CMakeFiles/udp_core.dir/image.cpp.o"
  "CMakeFiles/udp_core.dir/image.cpp.o.d"
  "CMakeFiles/udp_core.dir/isa.cpp.o"
  "CMakeFiles/udp_core.dir/isa.cpp.o.d"
  "CMakeFiles/udp_core.dir/lane.cpp.o"
  "CMakeFiles/udp_core.dir/lane.cpp.o.d"
  "CMakeFiles/udp_core.dir/local_memory.cpp.o"
  "CMakeFiles/udp_core.dir/local_memory.cpp.o.d"
  "CMakeFiles/udp_core.dir/machine.cpp.o"
  "CMakeFiles/udp_core.dir/machine.cpp.o.d"
  "CMakeFiles/udp_core.dir/program.cpp.o"
  "CMakeFiles/udp_core.dir/program.cpp.o.d"
  "CMakeFiles/udp_core.dir/stream_buffer.cpp.o"
  "CMakeFiles/udp_core.dir/stream_buffer.cpp.o.d"
  "CMakeFiles/udp_core.dir/vector_regfile.cpp.o"
  "CMakeFiles/udp_core.dir/vector_regfile.cpp.o.d"
  "libudp_core.a"
  "libudp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
