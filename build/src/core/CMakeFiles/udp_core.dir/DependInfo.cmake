
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/udp_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/udp_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/image.cpp" "src/core/CMakeFiles/udp_core.dir/image.cpp.o" "gcc" "src/core/CMakeFiles/udp_core.dir/image.cpp.o.d"
  "/root/repo/src/core/isa.cpp" "src/core/CMakeFiles/udp_core.dir/isa.cpp.o" "gcc" "src/core/CMakeFiles/udp_core.dir/isa.cpp.o.d"
  "/root/repo/src/core/lane.cpp" "src/core/CMakeFiles/udp_core.dir/lane.cpp.o" "gcc" "src/core/CMakeFiles/udp_core.dir/lane.cpp.o.d"
  "/root/repo/src/core/local_memory.cpp" "src/core/CMakeFiles/udp_core.dir/local_memory.cpp.o" "gcc" "src/core/CMakeFiles/udp_core.dir/local_memory.cpp.o.d"
  "/root/repo/src/core/machine.cpp" "src/core/CMakeFiles/udp_core.dir/machine.cpp.o" "gcc" "src/core/CMakeFiles/udp_core.dir/machine.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/udp_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/udp_core.dir/program.cpp.o.d"
  "/root/repo/src/core/stream_buffer.cpp" "src/core/CMakeFiles/udp_core.dir/stream_buffer.cpp.o" "gcc" "src/core/CMakeFiles/udp_core.dir/stream_buffer.cpp.o.d"
  "/root/repo/src/core/vector_regfile.cpp" "src/core/CMakeFiles/udp_core.dir/vector_regfile.cpp.o" "gcc" "src/core/CMakeFiles/udp_core.dir/vector_regfile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
