file(REMOVE_RECURSE
  "libudp_core.a"
)
