# Empty dependencies file for udp_core.
# This may be replaced when dependencies are built.
