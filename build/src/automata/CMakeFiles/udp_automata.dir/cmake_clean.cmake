file(REMOVE_RECURSE
  "CMakeFiles/udp_automata.dir/adfa.cpp.o"
  "CMakeFiles/udp_automata.dir/adfa.cpp.o.d"
  "CMakeFiles/udp_automata.dir/compile.cpp.o"
  "CMakeFiles/udp_automata.dir/compile.cpp.o.d"
  "CMakeFiles/udp_automata.dir/dfa.cpp.o"
  "CMakeFiles/udp_automata.dir/dfa.cpp.o.d"
  "CMakeFiles/udp_automata.dir/nfa.cpp.o"
  "CMakeFiles/udp_automata.dir/nfa.cpp.o.d"
  "CMakeFiles/udp_automata.dir/regex.cpp.o"
  "CMakeFiles/udp_automata.dir/regex.cpp.o.d"
  "libudp_automata.a"
  "libudp_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
