file(REMOVE_RECURSE
  "libudp_automata.a"
)
