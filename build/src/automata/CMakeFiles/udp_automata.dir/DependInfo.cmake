
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/adfa.cpp" "src/automata/CMakeFiles/udp_automata.dir/adfa.cpp.o" "gcc" "src/automata/CMakeFiles/udp_automata.dir/adfa.cpp.o.d"
  "/root/repo/src/automata/compile.cpp" "src/automata/CMakeFiles/udp_automata.dir/compile.cpp.o" "gcc" "src/automata/CMakeFiles/udp_automata.dir/compile.cpp.o.d"
  "/root/repo/src/automata/dfa.cpp" "src/automata/CMakeFiles/udp_automata.dir/dfa.cpp.o" "gcc" "src/automata/CMakeFiles/udp_automata.dir/dfa.cpp.o.d"
  "/root/repo/src/automata/nfa.cpp" "src/automata/CMakeFiles/udp_automata.dir/nfa.cpp.o" "gcc" "src/automata/CMakeFiles/udp_automata.dir/nfa.cpp.o.d"
  "/root/repo/src/automata/regex.cpp" "src/automata/CMakeFiles/udp_automata.dir/regex.cpp.o" "gcc" "src/automata/CMakeFiles/udp_automata.dir/regex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assembler/CMakeFiles/udp_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/udp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
