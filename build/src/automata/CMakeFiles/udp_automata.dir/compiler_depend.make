# Empty compiler generated dependencies file for udp_automata.
# This may be replaced when dependencies are built.
