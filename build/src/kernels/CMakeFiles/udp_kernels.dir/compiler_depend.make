# Empty compiler generated dependencies file for udp_kernels.
# This may be replaced when dependencies are built.
