file(REMOVE_RECURSE
  "CMakeFiles/udp_kernels.dir/csv.cpp.o"
  "CMakeFiles/udp_kernels.dir/csv.cpp.o.d"
  "CMakeFiles/udp_kernels.dir/dictionary.cpp.o"
  "CMakeFiles/udp_kernels.dir/dictionary.cpp.o.d"
  "CMakeFiles/udp_kernels.dir/histogram.cpp.o"
  "CMakeFiles/udp_kernels.dir/histogram.cpp.o.d"
  "CMakeFiles/udp_kernels.dir/huffman.cpp.o"
  "CMakeFiles/udp_kernels.dir/huffman.cpp.o.d"
  "CMakeFiles/udp_kernels.dir/pattern.cpp.o"
  "CMakeFiles/udp_kernels.dir/pattern.cpp.o.d"
  "CMakeFiles/udp_kernels.dir/snappy.cpp.o"
  "CMakeFiles/udp_kernels.dir/snappy.cpp.o.d"
  "CMakeFiles/udp_kernels.dir/trigger.cpp.o"
  "CMakeFiles/udp_kernels.dir/trigger.cpp.o.d"
  "libudp_kernels.a"
  "libudp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
