file(REMOVE_RECURSE
  "libudp_kernels.a"
)
