
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/csv.cpp" "src/kernels/CMakeFiles/udp_kernels.dir/csv.cpp.o" "gcc" "src/kernels/CMakeFiles/udp_kernels.dir/csv.cpp.o.d"
  "/root/repo/src/kernels/dictionary.cpp" "src/kernels/CMakeFiles/udp_kernels.dir/dictionary.cpp.o" "gcc" "src/kernels/CMakeFiles/udp_kernels.dir/dictionary.cpp.o.d"
  "/root/repo/src/kernels/histogram.cpp" "src/kernels/CMakeFiles/udp_kernels.dir/histogram.cpp.o" "gcc" "src/kernels/CMakeFiles/udp_kernels.dir/histogram.cpp.o.d"
  "/root/repo/src/kernels/huffman.cpp" "src/kernels/CMakeFiles/udp_kernels.dir/huffman.cpp.o" "gcc" "src/kernels/CMakeFiles/udp_kernels.dir/huffman.cpp.o.d"
  "/root/repo/src/kernels/pattern.cpp" "src/kernels/CMakeFiles/udp_kernels.dir/pattern.cpp.o" "gcc" "src/kernels/CMakeFiles/udp_kernels.dir/pattern.cpp.o.d"
  "/root/repo/src/kernels/snappy.cpp" "src/kernels/CMakeFiles/udp_kernels.dir/snappy.cpp.o" "gcc" "src/kernels/CMakeFiles/udp_kernels.dir/snappy.cpp.o.d"
  "/root/repo/src/kernels/trigger.cpp" "src/kernels/CMakeFiles/udp_kernels.dir/trigger.cpp.o" "gcc" "src/kernels/CMakeFiles/udp_kernels.dir/trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/udp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/udp_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/udp_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/udp_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
