file(REMOVE_RECURSE
  "CMakeFiles/udp_baselines.dir/branch_profile.cpp.o"
  "CMakeFiles/udp_baselines.dir/branch_profile.cpp.o.d"
  "CMakeFiles/udp_baselines.dir/csv.cpp.o"
  "CMakeFiles/udp_baselines.dir/csv.cpp.o.d"
  "CMakeFiles/udp_baselines.dir/dictionary.cpp.o"
  "CMakeFiles/udp_baselines.dir/dictionary.cpp.o.d"
  "CMakeFiles/udp_baselines.dir/histogram.cpp.o"
  "CMakeFiles/udp_baselines.dir/histogram.cpp.o.d"
  "CMakeFiles/udp_baselines.dir/huffman.cpp.o"
  "CMakeFiles/udp_baselines.dir/huffman.cpp.o.d"
  "CMakeFiles/udp_baselines.dir/snappy.cpp.o"
  "CMakeFiles/udp_baselines.dir/snappy.cpp.o.d"
  "CMakeFiles/udp_baselines.dir/trigger.cpp.o"
  "CMakeFiles/udp_baselines.dir/trigger.cpp.o.d"
  "libudp_baselines.a"
  "libudp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
