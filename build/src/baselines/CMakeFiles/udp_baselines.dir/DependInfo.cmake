
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/branch_profile.cpp" "src/baselines/CMakeFiles/udp_baselines.dir/branch_profile.cpp.o" "gcc" "src/baselines/CMakeFiles/udp_baselines.dir/branch_profile.cpp.o.d"
  "/root/repo/src/baselines/csv.cpp" "src/baselines/CMakeFiles/udp_baselines.dir/csv.cpp.o" "gcc" "src/baselines/CMakeFiles/udp_baselines.dir/csv.cpp.o.d"
  "/root/repo/src/baselines/dictionary.cpp" "src/baselines/CMakeFiles/udp_baselines.dir/dictionary.cpp.o" "gcc" "src/baselines/CMakeFiles/udp_baselines.dir/dictionary.cpp.o.d"
  "/root/repo/src/baselines/histogram.cpp" "src/baselines/CMakeFiles/udp_baselines.dir/histogram.cpp.o" "gcc" "src/baselines/CMakeFiles/udp_baselines.dir/histogram.cpp.o.d"
  "/root/repo/src/baselines/huffman.cpp" "src/baselines/CMakeFiles/udp_baselines.dir/huffman.cpp.o" "gcc" "src/baselines/CMakeFiles/udp_baselines.dir/huffman.cpp.o.d"
  "/root/repo/src/baselines/snappy.cpp" "src/baselines/CMakeFiles/udp_baselines.dir/snappy.cpp.o" "gcc" "src/baselines/CMakeFiles/udp_baselines.dir/snappy.cpp.o.d"
  "/root/repo/src/baselines/trigger.cpp" "src/baselines/CMakeFiles/udp_baselines.dir/trigger.cpp.o" "gcc" "src/baselines/CMakeFiles/udp_baselines.dir/trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/udp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/udp_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/assembler/CMakeFiles/udp_asm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
