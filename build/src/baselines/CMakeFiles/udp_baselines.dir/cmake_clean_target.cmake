file(REMOVE_RECURSE
  "libudp_baselines.a"
)
