# Empty dependencies file for udp_baselines.
# This may be replaced when dependencies are built.
