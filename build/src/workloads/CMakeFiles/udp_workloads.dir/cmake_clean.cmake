file(REMOVE_RECURSE
  "CMakeFiles/udp_workloads.dir/generators.cpp.o"
  "CMakeFiles/udp_workloads.dir/generators.cpp.o.d"
  "libudp_workloads.a"
  "libudp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
