file(REMOVE_RECURSE
  "libudp_workloads.a"
)
