# Empty dependencies file for udp_workloads.
# This may be replaced when dependencies are built.
