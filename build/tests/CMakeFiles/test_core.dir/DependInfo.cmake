
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/test_core.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/test_core.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_local_memory.cpp" "tests/CMakeFiles/test_core.dir/test_local_memory.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_local_memory.cpp.o.d"
  "/root/repo/tests/test_stream_buffer.cpp" "tests/CMakeFiles/test_core.dir/test_stream_buffer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_stream_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assembler/CMakeFiles/udp_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/udp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
