file(REMOVE_RECURSE
  "CMakeFiles/test_lane.dir/test_lane_exec.cpp.o"
  "CMakeFiles/test_lane.dir/test_lane_exec.cpp.o.d"
  "test_lane"
  "test_lane.pdb"
  "test_lane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
