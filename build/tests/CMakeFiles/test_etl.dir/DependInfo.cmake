
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_etl.cpp" "tests/CMakeFiles/test_etl.dir/test_etl.cpp.o" "gcc" "tests/CMakeFiles/test_etl.dir/test_etl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assembler/CMakeFiles/udp_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/udp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/etl/CMakeFiles/udp_etl.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/udp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/udp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/udp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/udp_automata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
