# Empty dependencies file for test_etl.
# This may be replaced when dependencies are built.
