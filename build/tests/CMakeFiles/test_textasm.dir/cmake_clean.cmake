file(REMOVE_RECURSE
  "CMakeFiles/test_textasm.dir/test_textasm.cpp.o"
  "CMakeFiles/test_textasm.dir/test_textasm.cpp.o.d"
  "test_textasm"
  "test_textasm.pdb"
  "test_textasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
