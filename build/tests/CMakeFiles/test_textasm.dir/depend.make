# Empty dependencies file for test_textasm.
# This may be replaced when dependencies are built.
