file(REMOVE_RECURSE
  "CMakeFiles/test_actions.dir/test_actions.cpp.o"
  "CMakeFiles/test_actions.dir/test_actions.cpp.o.d"
  "test_actions"
  "test_actions.pdb"
  "test_actions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
