# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_lane[1]_include.cmake")
include("/root/repo/build/tests/test_automata[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_etl[1]_include.cmake")
include("/root/repo/build/tests/test_textasm[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_actions[1]_include.cmake")
