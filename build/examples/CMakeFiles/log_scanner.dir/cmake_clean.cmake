file(REMOVE_RECURSE
  "CMakeFiles/log_scanner.dir/log_scanner.cpp.o"
  "CMakeFiles/log_scanner.dir/log_scanner.cpp.o.d"
  "log_scanner"
  "log_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
