# Empty compiler generated dependencies file for log_scanner.
# This may be replaced when dependencies are built.
