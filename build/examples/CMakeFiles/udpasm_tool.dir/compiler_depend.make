# Empty compiler generated dependencies file for udpasm_tool.
# This may be replaced when dependencies are built.
