file(REMOVE_RECURSE
  "CMakeFiles/udpasm_tool.dir/udpasm_tool.cpp.o"
  "CMakeFiles/udpasm_tool.dir/udpasm_tool.cpp.o.d"
  "udpasm_tool"
  "udpasm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udpasm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
