file(REMOVE_RECURSE
  "CMakeFiles/huffman_tour.dir/huffman_tour.cpp.o"
  "CMakeFiles/huffman_tour.dir/huffman_tour.cpp.o.d"
  "huffman_tour"
  "huffman_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huffman_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
