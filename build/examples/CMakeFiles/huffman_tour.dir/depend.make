# Empty dependencies file for huffman_tour.
# This may be replaced when dependencies are built.
